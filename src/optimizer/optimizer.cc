#include "optimizer/optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <set>

#include "expr/rewriter.h"

namespace rqp {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool ExtractSargableRange(const PredicatePtr& pred, const std::string& column,
                          int64_t* lo, int64_t* hi, PredicatePtr* residual,
                          bool normalize) {
  if (pred == nullptr) return false;
  PredicatePtr norm = normalize ? Normalize(pred) : pred;
  // After normalization a conjunction has per-column canonical leaves, so a
  // single pass over (possibly one) conjuncts suffices.
  std::vector<PredicatePtr> conjuncts;
  if (const auto* a = std::get_if<Conjunction>(&norm->node)) {
    conjuncts = a->children;
  } else {
    conjuncts = {norm};
  }
  bool found = false;
  int64_t range_lo = std::numeric_limits<int64_t>::min();
  int64_t range_hi = std::numeric_limits<int64_t>::max();
  std::vector<PredicatePtr> rest;
  for (const auto& c : conjuncts) {
    bool consumed = false;
    if (const auto* cmp = std::get_if<Comparison>(&c->node)) {
      if (cmp->column == column && cmp->param_index < 0) {
        switch (cmp->op) {
          case CmpOp::kEq:
            range_lo = std::max(range_lo, cmp->value);
            range_hi = std::min(range_hi, cmp->value);
            consumed = found = true;
            break;
          case CmpOp::kLe:
            range_hi = std::min(range_hi, cmp->value);
            consumed = found = true;
            break;
          case CmpOp::kGe:
            range_lo = std::max(range_lo, cmp->value);
            consumed = found = true;
            break;
          default:
            break;  // != stays residual; </> eliminated by normalization
        }
      }
    } else if (const auto* bt = std::get_if<Between>(&c->node)) {
      if (bt->column == column) {
        range_lo = std::max(range_lo, bt->lo);
        range_hi = std::min(range_hi, bt->hi);
        consumed = found = true;
      }
    }
    if (!consumed) rest.push_back(c);
  }
  if (!found) return false;
  *lo = range_lo;
  *hi = range_hi;
  if (rest.empty()) {
    *residual = nullptr;
  } else if (rest.size() == 1) {
    *residual = rest[0];
  } else {
    *residual = MakeAnd(std::move(rest));
  }
  return true;
}

bool ExtractParamRange(const PredicatePtr& pred, const std::string& column,
                       int* lo_param, int* hi_param, PredicatePtr* residual) {
  if (pred == nullptr) return false;
  std::vector<PredicatePtr> conjuncts;
  if (const auto* a = std::get_if<Conjunction>(&pred->node)) {
    conjuncts = a->children;
  } else {
    conjuncts = {pred};
  }
  *lo_param = -1;
  *hi_param = -1;
  std::vector<PredicatePtr> rest;
  for (const auto& c : conjuncts) {
    bool consumed = false;
    if (const auto* cmp = std::get_if<Comparison>(&c->node)) {
      if (cmp->column == column && cmp->param_index >= 0) {
        if (cmp->op == CmpOp::kGe && *lo_param < 0) {
          *lo_param = cmp->param_index;
          consumed = true;
        } else if (cmp->op == CmpOp::kLe && *hi_param < 0) {
          *hi_param = cmp->param_index;
          consumed = true;
        }
      }
    }
    if (!consumed) rest.push_back(c);
  }
  if (*lo_param < 0 || *hi_param < 0) return false;
  if (rest.empty()) {
    *residual = nullptr;
  } else if (rest.size() == 1) {
    *residual = rest[0];
  } else {
    *residual = MakeAnd(std::move(rest));
  }
  return true;
}

struct Optimizer::Unit {
  bool is_materialized = false;
  std::string table;        // base unit
  PredicatePtr predicate;   // base unit
  const MaterializedLeaf* leaf = nullptr;
  std::vector<std::string> covered;  // tables covered by this unit
};

PlanNodePtr Optimizer::MakeLeafPlan(const Unit& unit,
                                    std::vector<PlanNodePtr>* sink) const {
  int ids = 0;  // leaf-internal; reassigned by the caller
  if (unit.is_materialized) {
    auto node = NewPlanNode(PlanOp::kMaterializedSource, &ids);
    node->materialized = unit.leaf->batches;
    node->materialized_slots = unit.leaf->slots;
    node->materialized_rows = unit.leaf->rows;
    node->covered_tables = unit.leaf->covered_tables;
    coster_.Cost(node.get());
    return node;
  }
  auto scan = NewPlanNode(PlanOp::kTableScan, &ids);
  scan->table = unit.table;
  scan->predicate = unit.predicate;
  coster_.Cost(scan.get());
  if (sink != nullptr) sink->push_back(scan->Clone());
  PlanNodePtr best = std::move(scan);

  if (options_.consider_index_scan && unit.predicate != nullptr) {
    for (const auto& col : catalog_->IndexedColumns(unit.table)) {
      int64_t lo, hi;
      PredicatePtr residual;
      if (ExtractSargableRange(unit.predicate, col, &lo, &hi, &residual,
                               options_.normalize_for_sargable)) {
        auto iscan = NewPlanNode(PlanOp::kIndexScan, &ids);
        iscan->table = unit.table;
        iscan->index_column = col;
        iscan->index_lo = lo;
        iscan->index_hi = hi;
        iscan->predicate = residual;
        coster_.Cost(iscan.get());
        if (sink != nullptr) sink->push_back(iscan->Clone());
        if (iscan->est_cost < best->est_cost) best = std::move(iscan);
        continue;
      }
      // Late binding: parameter-typed bounds resolved at build time.
      int lo_param, hi_param;
      if (HasParams(unit.predicate) &&
          ExtractParamRange(unit.predicate, col, &lo_param, &hi_param,
                            &residual)) {
        auto iscan = NewPlanNode(PlanOp::kIndexScan, &ids);
        iscan->table = unit.table;
        iscan->index_column = col;
        iscan->index_lo_param = lo_param;
        iscan->index_hi_param = hi_param;
        iscan->predicate = residual;
        coster_.Cost(iscan.get());
        if (sink != nullptr) sink->push_back(iscan->Clone());
        if (iscan->est_cost < best->est_cost) best = std::move(iscan);
      }
    }
  }
  return best;
}

double Optimizer::JoinMethodCost(JoinMethod method, double left_rows,
                                 double right_rows, double jsel,
                                 double right_cost) const {
  const CostModel& cm = options_.cost.exec;
  const double mem = static_cast<double>(options_.cost.memory_pages);
  const double out = left_rows * right_rows * jsel;
  auto pages = [](double rows) {
    return std::max(1.0, std::ceil(rows / kRowsPerPage));
  };
  auto hash_spill = [&](double build_pages, double probe_pages) {
    if (build_pages <= mem) return 0.0;
    return (1.0 - mem / build_pages) * (build_pages + probe_pages) *
           (cm.spill_page_write + cm.spill_page_read);
  };
  auto sort_cost = [&](double n) {
    return std::max(1.0, n) * std::log2(std::max(1.0, n) + 1.0) *
           cm.compare_op;
  };
  switch (method) {
    case JoinMethod::kHashBuildRight:
      return right_cost +
             (left_rows + right_rows * cm.hash_build_factor) * cm.hash_op +
             hash_spill(pages(right_rows), pages(left_rows)) +
             out * cm.row_cpu;
    case JoinMethod::kHashBuildLeft:
      return right_cost +
             (left_rows * cm.hash_build_factor + right_rows) * cm.hash_op +
             hash_spill(pages(left_rows), pages(right_rows)) +
             out * cm.row_cpu;
    case JoinMethod::kSortMerge:
      return right_cost + sort_cost(left_rows) + sort_cost(right_rows) +
             (left_rows + right_rows) * cm.compare_op + out * cm.row_cpu;
    case JoinMethod::kIndexNLRight:
      return left_rows * cm.index_descend +
             out * (cm.random_page_read + cm.row_cpu);
  }
  return 0.0;
}

JoinMethod Optimizer::BestJoinMethod(double left_rows, double right_rows,
                                     double jsel, bool index_nl_available,
                                     double right_cost) const {
  JoinMethod best = JoinMethod::kHashBuildRight;
  double best_cost = JoinMethodCost(best, left_rows, right_rows, jsel,
                                    right_cost);
  auto consider = [&](JoinMethod m) {
    const double c = JoinMethodCost(m, left_rows, right_rows, jsel,
                                    right_cost);
    if (c < best_cost) {
      best_cost = c;
      best = m;
    }
  };
  consider(JoinMethod::kHashBuildLeft);
  if (options_.consider_sort_merge) consider(JoinMethod::kSortMerge);
  if (options_.consider_index_nl && index_nl_available) {
    consider(JoinMethod::kIndexNLRight);
  }
  return best;
}

std::pair<int64_t, int64_t> Optimizer::ValidityRange(
    JoinMethod chosen, double left_rows, double right_rows, double jsel,
    bool index_nl_available, double right_cost, double slack) const {
  // The chosen method stays valid at cardinality l while its marginal cost
  // is within `slack` of the best applicable method's.
  auto still_valid = [&](double l) {
    const JoinMethod best =
        BestJoinMethod(l, right_rows, jsel, index_nl_available, right_cost);
    if (best == chosen) return true;
    const double best_cost =
        JoinMethodCost(best, l, right_rows, jsel, right_cost);
    const double chosen_cost =
        JoinMethodCost(chosen, l, right_rows, jsel, right_cost);
    return chosen_cost <= slack * best_cost;
  };
  const double kMaxMult = 65536.0;
  double hi_mult = kMaxMult;
  for (double m = std::sqrt(2.0); m <= kMaxMult; m *= std::sqrt(2.0)) {
    if (!still_valid(left_rows * m)) {
      hi_mult = m / std::sqrt(2.0);
      break;
    }
  }
  double lo_mult = 1.0 / kMaxMult;
  for (double m = std::sqrt(2.0); m <= kMaxMult; m *= std::sqrt(2.0)) {
    if (!still_valid(left_rows / m)) {
      lo_mult = std::sqrt(2.0) / m;
      break;
    }
  }
  const double lo = std::max(0.0, left_rows * lo_mult);
  const double hi = std::min(static_cast<double>(
                                 std::numeric_limits<int64_t>::max() / 2),
                             left_rows * hi_mult);
  return {static_cast<int64_t>(std::floor(lo)),
          static_cast<int64_t>(std::ceil(hi))};
}

PlanNodePtr Optimizer::MakeJoinPlan(const PlanNode& left,
                                    const PlanNode& right,
                                    const std::vector<const JoinEdge*>& edges,
                                    const std::vector<Unit>& units,
                                    int64_t* plans_considered,
                                    int* id_counter,
                                    std::vector<PlanNodePtr>* sink) const {
  (void)units;
  if (edges.empty()) return nullptr;
  // The first edge is the physical join key; any further crossing edges
  // (cyclic join graphs) are applied as residual column-to-column filters
  // above the join.
  const JoinEdge& edge = *edges[0];

  // Orient the edge: which slot belongs to the left plan?
  const auto left_tables = left.BaseTables();
  const bool edge_left_in_left =
      std::find(left_tables.begin(), left_tables.end(), edge.left_table) !=
      left_tables.end();
  const std::string left_key =
      edge_left_in_left ? edge.LeftSlot() : edge.RightSlot();
  const std::string right_key =
      edge_left_in_left ? edge.RightSlot() : edge.LeftSlot();
  std::string rt, rc;
  SplitSlot(right_key, &rt, &rc);

  std::vector<PlanNodePtr> candidates;

  // Index nested loops: right must be a plain scan of a base table with an
  // index on the join column.
  const bool right_is_base_scan =
      right.op == PlanOp::kTableScan && right.table == rt;
  const SortedIndex* inner_index = catalog_->FindIndex(rt, rc);
  const bool inlj_available = right_is_base_scan && inner_index != nullptr;

  if (options_.use_gjoin) {
    auto gj = NewPlanNode(PlanOp::kGJoin, id_counter);
    gj->left_key = left_key;
    gj->right_key = right_key;
    if (inlj_available && right.predicate == nullptr) {
      gj->table = rt;          // enables the g-join index strategy
      gj->index_column = rc;
    }
    gj->children.push_back(left.Clone());
    gj->children.push_back(right.Clone());
    candidates.push_back(std::move(gj));
  } else {
    {
      auto hj = NewPlanNode(PlanOp::kHashJoin, id_counter);
      hj->left_key = left_key;
      hj->right_key = right_key;
      hj->children.push_back(left.Clone());
      hj->children.push_back(right.Clone());
      candidates.push_back(std::move(hj));
    }
    if (options_.consider_sort_merge) {
      auto sl = NewPlanNode(PlanOp::kSort, id_counter);
      sl->sort_key = left_key;
      sl->children.push_back(left.Clone());
      auto sr = NewPlanNode(PlanOp::kSort, id_counter);
      sr->sort_key = right_key;
      sr->children.push_back(right.Clone());
      auto mj = NewPlanNode(PlanOp::kMergeJoin, id_counter);
      mj->left_key = left_key;
      mj->right_key = right_key;
      mj->children.push_back(std::move(sl));
      mj->children.push_back(std::move(sr));
      candidates.push_back(std::move(mj));
    }
    if (options_.consider_index_nl && inlj_available) {
      auto inlj = NewPlanNode(PlanOp::kIndexNLJoin, id_counter);
      inlj->left_key = left_key;
      inlj->table = rt;
      inlj->index_column = rc;
      inlj->children.push_back(left.Clone());
      PlanNodePtr top = std::move(inlj);
      if (right.predicate != nullptr) {
        // INLJ probes the raw table; the inner's local predicate becomes a
        // residual filter over qualified names.
        auto filter = NewPlanNode(PlanOp::kFilter, id_counter);
        filter->predicate = QualifyColumns(right.predicate, rt);
        filter->children.push_back(std::move(top));
        top = std::move(filter);
      }
      candidates.push_back(std::move(top));
    }
  }

  // Extra crossing edges (cyclic join graphs) become a residual
  // column-comparison filter above whichever join shape is emitted.
  auto wrap_residual = [&](PlanNodePtr p) -> PlanNodePtr {
    if (edges.size() <= 1) return p;
    std::vector<PredicatePtr> residuals;
    for (size_t e = 1; e < edges.size(); ++e) {
      residuals.push_back(MakeColCmp(edges[e]->LeftSlot(), CmpOp::kEq,
                                     edges[e]->RightSlot()));
    }
    auto filter = NewPlanNode(PlanOp::kFilter, id_counter);
    filter->predicate = residuals.size() == 1 ? residuals[0]
                                              : MakeAnd(std::move(residuals));
    filter->children.push_back(std::move(p));
    coster_.Cost(filter.get());
    return filter;
  };

  PlanNodePtr best;
  for (auto& cand : candidates) {
    coster_.Cost(cand.get());
    ++*plans_considered;
    if (sink != nullptr) sink->push_back(wrap_residual(cand->Clone()));
    if (!best || cand->est_cost < best->est_cost) best = std::move(cand);
  }
  if (best) best = wrap_residual(std::move(best));
  return best;
}

void Optimizer::InsertChecks(PlanNode* node) const {
  auto is_join = [](PlanOp op) {
    return op == PlanOp::kHashJoin || op == PlanOp::kMergeJoin ||
           op == PlanOp::kIndexNLJoin || op == PlanOp::kNestedLoopsJoin ||
           op == PlanOp::kGJoin;
  };
  auto is_uncertain = [&](const PlanNode& child) {
    // A CHECK pays off only where the estimate is genuinely at risk: a
    // multi-column predicate (independence-assumption exposure) or a join
    // below (compounded estimates). Single-column range estimates come
    // straight from a histogram and are not worth a pipeline breaker —
    // POP's own placement heuristic.
    auto risky_pred = [](const PredicatePtr& p) {
      return p != nullptr && ReferencedColumns(p).size() >= 2;
    };
    if (risky_pred(child.predicate)) return true;
    for (const auto& c : child.children) {
      if (risky_pred(c->predicate) || is_join(c->op)) return true;
    }
    return is_join(child.op);
  };

  for (auto& child : node->children) {
    InsertChecks(child.get());
  }
  if (!is_join(node->op)) return;
  // Cross products have no alternative join method to switch to.
  if (node->op == PlanOp::kNestedLoopsJoin) return;

  for (size_t i = 0; i < node->children.size(); ++i) {
    PlanNodePtr& child = node->children[i];
    if (child->op == PlanOp::kCheck) continue;
    if (!is_uncertain(*child)) continue;

    int64_t lo = 0, hi = std::numeric_limits<int64_t>::max();
    if (options_.check_factor > 1.0) {
      lo = static_cast<int64_t>(child->est_rows / options_.check_factor);
      hi = static_cast<int64_t>(child->est_rows * options_.check_factor) + 1;
    } else {
      // Sensitivity probing: find where the parent's method choice flips.
      const double this_rows = child->est_rows;
      double other_rows = 1.0;
      double other_cost = 0.0;
      if (node->children.size() == 2) {
        other_rows = node->children[1 - i]->est_rows;
        other_cost = node->children[1 - i]->est_cost;
      } else if (node->op == PlanOp::kIndexNLJoin) {
        // The INLJ inner is not consumed; alternatives would pay a scan.
        other_rows = card_->TableRows(node->table);
        other_cost = std::ceil(other_rows / kRowsPerPage) *
                         options_.cost.exec.seq_page_read +
                     other_rows * options_.cost.exec.row_cpu;
      }
      double jsel = 0.01;
      if (node->op == PlanOp::kIndexNLJoin) {
        jsel = card_->JoinSelectivity(node->left_key,
                                      node->table + "." + node->index_column);
      } else if (!node->left_key.empty() && !node->right_key.empty()) {
        jsel = card_->JoinSelectivity(node->left_key, node->right_key);
      }
      const bool inlj_avail = node->op == PlanOp::kIndexNLJoin;
      // The method the plan actually committed to, seen from the checked
      // child's seat (left = checked side).
      JoinMethod chosen_method = JoinMethod::kHashBuildRight;
      switch (node->op) {
        case PlanOp::kIndexNLJoin:
          chosen_method = JoinMethod::kIndexNLRight;
          break;
        case PlanOp::kHashJoin:
          chosen_method = i == 0 ? JoinMethod::kHashBuildRight
                                 : JoinMethod::kHashBuildLeft;
          break;
        case PlanOp::kMergeJoin:
          chosen_method = JoinMethod::kSortMerge;
          break;
        case PlanOp::kGJoin:
          chosen_method = this_rows <= other_rows
                              ? JoinMethod::kHashBuildLeft
                              : JoinMethod::kHashBuildRight;
          break;
        default:
          break;
      }
      auto range = ValidityRange(chosen_method, std::max(1.0, this_rows),
                                 other_rows, jsel, inlj_avail, other_cost);
      // Safety margin: a flip just past the boundary saves little; only
      // re-optimize when the better plan is clearly better.
      lo = range.first / 2;
      hi = range.second < std::numeric_limits<int64_t>::max() / 4
               ? range.second * 2
               : range.second;
    }

    static int check_ids = 1 << 20;  // distinct from optimizer-assigned ids
    auto check = std::make_unique<PlanNode>();
    check->op = PlanOp::kCheck;
    check->id = check_ids++;
    check->check_lo = lo;
    check->check_hi = hi;
    check->est_rows = child->est_rows;
    check->children.push_back(std::move(child));
    node->children[i] = std::move(check);
  }
}

StatusOr<OptimizationResult> Optimizer::Optimize(
    const QuerySpec& spec,
    const std::vector<MaterializedLeaf>& materialized) const {
  OptimizationResult result;
  int id_counter = 0;

  // 1. Bind parameters (or keep markers for generic-plan optimization).
  auto bind = [&](const PredicatePtr& p) -> PredicatePtr {
    if (p == nullptr) return nullptr;
    if (options_.bind_params_at_optimization && !spec.params.empty()) {
      return BindParams(p, spec.params);
    }
    return p;
  };

  // 2. Build enumeration units.
  std::vector<Unit> units;
  std::map<std::string, int> unit_of_table;
  std::set<std::string> covered;
  for (const auto& leaf : materialized) {
    Unit u;
    u.is_materialized = true;
    u.leaf = &leaf;
    u.covered = leaf.covered_tables;
    for (const auto& t : leaf.covered_tables) {
      covered.insert(t);
      unit_of_table[t] = static_cast<int>(units.size());
    }
    units.push_back(std::move(u));
  }
  for (const auto& ref : spec.tables) {
    if (covered.count(ref.table) != 0) continue;
    if (!catalog_->GetTable(ref.table).ok()) {
      return Status::NotFound("unknown table '" + ref.table + "'");
    }
    Unit u;
    u.table = ref.table;
    u.predicate = bind(ref.predicate);
    u.covered = {ref.table};
    unit_of_table[ref.table] = static_cast<int>(units.size());
    units.push_back(std::move(u));
  }
  const size_t m = units.size();
  if (m == 0) return Status::InvalidArgument("query references no tables");
  if (m > 20) return Status::Unimplemented("more than 20 join units");

  // 3. Resolve edges to unit pairs; detect cycles/duplicates (unsupported).
  struct UnitEdge { int a, b; const JoinEdge* edge; };
  std::vector<UnitEdge> uedges;
  for (const auto& e : spec.joins) {
    auto ia = unit_of_table.find(e.left_table);
    auto ib = unit_of_table.find(e.right_table);
    if (ia == unit_of_table.end() || ib == unit_of_table.end()) {
      return Status::InvalidArgument("join references unknown table");
    }
    if (ia->second == ib->second) continue;  // already joined (materialized)
    uedges.push_back({ia->second, ib->second, &e});
  }

  // Robust selection re-costs candidates with selectivity overrides pinned
  // per perturbation point; materialized leaves already have exact
  // cardinalities, so re-optimization rounds fall back to nominal choice.
  const bool robust_on =
      RobustSelectionEnabled(options_.robust_selection.enabled) &&
      materialized.empty();
  std::vector<PlanNodePtr> robust_sink;
  std::vector<PlanNodePtr>* top_sink = robust_on ? &robust_sink : nullptr;

  // 4. Leaf plans.
  std::vector<PlanNodePtr> leaf_plans;
  leaf_plans.reserve(m);
  for (const auto& u : units) {
    // For single-table queries the leaf alternatives are the candidate set.
    leaf_plans.push_back(MakeLeafPlan(u, m == 1 ? top_sink : nullptr));
    ++result.plans_considered;
  }
  // Reassign leaf ids to be unique across the plan.
  std::function<void(PlanNode*)> renumber = [&](PlanNode* n) {
    n->id = id_counter++;
    for (auto& c : n->children) renumber(c.get());
  };
  for (auto& lp : leaf_plans) renumber(lp.get());

  // Edge lookup between unit sets.
  auto crossing_edges = [&](uint32_t s1, uint32_t s2) {
    std::vector<const JoinEdge*> out;
    for (const auto& ue : uedges) {
      const uint32_t ba = 1u << ue.a, bb = 1u << ue.b;
      if (((s1 & ba) && (s2 & bb)) || ((s1 & bb) && (s2 & ba))) {
        out.push_back(ue.edge);
      }
    }
    return out;
  };

  PlanNodePtr joined;
  bool budget_hit = false;

  if (m == 1) {
    joined = std::move(leaf_plans[0]);
  } else if (static_cast<int>(m) <= options_.max_dp_tables) {
    // DPsize over connected subsets.
    std::vector<PlanNodePtr> dp(1u << m);
    for (size_t i = 0; i < m; ++i) dp[1u << i] = std::move(leaf_plans[i]);
    for (uint32_t mask = 1; mask < (1u << m); ++mask) {
      if ((mask & (mask - 1)) == 0) continue;  // singleton
      PlanNodePtr best;
      for (uint32_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        const uint32_t rest = mask ^ sub;
        if (!dp[sub] || !dp[rest]) continue;
        auto edges = crossing_edges(sub, rest);
        if (edges.empty()) continue;
        if (options_.enumeration_budget > 0 &&
            result.plans_considered >= options_.enumeration_budget) {
          budget_hit = true;
          break;
        }
        PlanNodePtr cand = MakeJoinPlan(*dp[sub], *dp[rest], edges, units,
                                        &result.plans_considered, &id_counter,
                                        mask == (1u << m) - 1 ? top_sink
                                                              : nullptr);
        if (cand && (!best || cand->est_cost < best->est_cost)) {
          best = std::move(cand);
        }
      }
      if (budget_hit) break;
      if (best) dp[mask] = std::move(best);
    }
    if (!budget_hit && dp[(1u << m) - 1]) {
      joined = std::move(dp[(1u << m) - 1]);
    } else if (!budget_hit) {
      // Disconnected graph: fold remaining components with cross joins.
      std::vector<PlanNodePtr> components;
      uint32_t remaining = (1u << m) - 1;
      // Collect maximal connected masks greedily.
      for (uint32_t mask = (1u << m) - 1; mask > 0; --mask) {
        if ((mask & remaining) != mask) continue;
        if (dp[mask]) {
          components.push_back(std::move(dp[mask]));
          remaining &= ~mask;
          if (remaining == 0) break;
          mask = (1u << m) - 1;
        }
      }
      if (remaining != 0) {
        return Status::Internal("join enumeration failed to cover all units");
      }
      joined = std::move(components[0]);
      for (size_t i = 1; i < components.size(); ++i) {
        auto cross = NewPlanNode(PlanOp::kNestedLoopsJoin, &id_counter);
        cross->children.push_back(std::move(joined));
        cross->children.push_back(std::move(components[i]));
        joined = std::move(cross);
      }
      coster_.Cost(joined.get());
    }
  }

  if (!joined) {
    // Greedy fallback (too many tables, or enumeration budget exhausted).
    result.used_greedy = true;
    struct Entry { uint32_t mask; PlanNodePtr plan; };
    std::vector<Entry> entries;
    for (size_t i = 0; i < m; ++i) {
      if (leaf_plans[i] == nullptr) {
        // DP may have consumed leaves before the budget hit; rebuild.
        leaf_plans[i] = MakeLeafPlan(units[i]);
        renumber(leaf_plans[i].get());
      }
      entries.push_back({1u << i, std::move(leaf_plans[i])});
    }
    while (entries.size() > 1) {
      double best_cost = kInf;
      size_t bi = 0, bj = 1;
      PlanNodePtr best;
      for (size_t i = 0; i < entries.size(); ++i) {
        for (size_t j = 0; j < entries.size(); ++j) {
          if (i == j) continue;
          auto edges = crossing_edges(entries[i].mask, entries[j].mask);
          if (edges.empty()) continue;
          PlanNodePtr cand =
              MakeJoinPlan(*entries[i].plan, *entries[j].plan, edges, units,
                           &result.plans_considered, &id_counter,
                           entries.size() == 2 ? top_sink : nullptr);
          if (cand && cand->est_cost < best_cost) {
            best_cost = cand->est_cost;
            best = std::move(cand);
            bi = i;
            bj = j;
          }
        }
      }
      if (!best) {
        // No connected pair: cross join the two smallest entries.
        std::sort(entries.begin(), entries.end(),
                  [](const Entry& a, const Entry& b) {
                    return a.plan->est_rows < b.plan->est_rows;
                  });
        auto cross = NewPlanNode(PlanOp::kNestedLoopsJoin, &id_counter);
        cross->children.push_back(std::move(entries[0].plan));
        cross->children.push_back(std::move(entries[1].plan));
        coster_.Cost(cross.get());
        best = std::move(cross);
        bi = 0;
        bj = 1;
      }
      const uint32_t merged = entries[bi].mask | entries[bj].mask;
      if (bi > bj) std::swap(bi, bj);
      entries.erase(entries.begin() + static_cast<long>(bj));
      entries.erase(entries.begin() + static_cast<long>(bi));
      entries.push_back({merged, std::move(best)});
    }
    joined = std::move(entries[0].plan);
  }

  // 5. Derived columns (expression-VM Map above the join tree), then
  // aggregation: Map's output slots are visible to group_by/aggregates.
  PlanNodePtr root = std::move(joined);
  if (!spec.derived.empty()) {
    auto map = NewPlanNode(PlanOp::kMap, &id_counter);
    map->derived = spec.derived;
    map->children.push_back(std::move(root));
    root = std::move(map);
  }
  if (!spec.aggregates.empty() || !spec.group_by.empty()) {
    auto agg = NewPlanNode(PlanOp::kHashAgg, &id_counter);
    agg->group_by = spec.group_by;
    agg->aggregates = spec.aggregates;
    agg->children.push_back(std::move(root));
    root = std::move(agg);
  }

  // 5b. Penalty-aware robust selection (PARQO): score the surfaced
  // candidates over deterministic perturbations of the selectivity error
  // bands and replace the nominal winner with the flattest-surface plan.
  if (robust_on) {
    auto with_agg = [&](PlanNodePtr p) -> PlanNodePtr {
      if (!spec.derived.empty()) {
        int mids = 0;
        auto map = NewPlanNode(PlanOp::kMap, &mids);
        map->derived = spec.derived;
        map->children.push_back(std::move(p));
        p = std::move(map);
      }
      if (spec.aggregates.empty() && spec.group_by.empty()) return p;
      int ids = 0;
      auto agg = NewPlanNode(PlanOp::kHashAgg, &ids);
      agg->group_by = spec.group_by;
      agg->aggregates = spec.aggregates;
      agg->children.push_back(std::move(p));
      return agg;
    };
    // Candidate set: the nominal winner plus every surfaced alternative,
    // deduplicated by structural signature, cheapest-first, top-K.
    std::vector<PlanNodePtr> collected;
    collected.push_back(root->Clone());
    for (auto& alt : robust_sink) {
      collected.push_back(with_agg(std::move(alt)));
    }
    std::set<std::string> seen;
    std::vector<PlanNodePtr> candidates;
    for (auto& cand : collected) {
      int ids = 0;
      std::function<void(PlanNode*)> renum = [&](PlanNode* n) {
        n->id = ids++;
        for (auto& c : n->children) renum(c.get());
      };
      renum(cand.get());
      coster_.Cost(cand.get());
      if (seen.insert(cand->Explain(false)).second) {
        candidates.push_back(std::move(cand));
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const PlanNodePtr& a, const PlanNodePtr& b) {
                if (a->est_cost != b->est_cost) {
                  return a->est_cost < b->est_cost;
                }
                return a->Explain(false) < b->Explain(false);
              });
    const size_t top_k =
        static_cast<size_t>(std::max(1, options_.robust_selection.top_k));
    if (candidates.size() > top_k) candidates.resize(top_k);

    // Error-band dimensions from each uncertain estimate's pedigree.
    std::vector<PerturbDimension> dims;
    for (const auto& u : units) {
      if (u.is_materialized || u.predicate == nullptr) continue;
      const SelEstimate e = card_->ScanEstimate(u.table, u.predicate);
      PerturbDimension d;
      d.kind = PerturbDimension::Kind::kScan;
      d.table = u.table;
      d.center = e.value;
      d.sigma = BandSigma(e, card_->options().sigma_per_term);
      dims.push_back(std::move(d));
    }
    for (const auto& ue : uedges) {
      const SelEstimate e =
          card_->JoinEstimate(ue.edge->LeftSlot(), ue.edge->RightSlot());
      PerturbDimension d;
      d.kind = PerturbDimension::Kind::kJoin;
      d.left_slot = ue.edge->LeftSlot();
      d.right_slot = ue.edge->RightSlot();
      d.center = e.value;
      d.sigma = BandSigma(e, card_->options().sigma_per_term);
      dims.push_back(std::move(d));
    }

    RobustSelection sel =
        SelectRobustPlan(candidates, dims, *card_, options_.cost,
                         options_.robust_selection);
    if (sel.chosen >= 0) {
      result.robust_used = true;
      result.hedged = sel.hedged;
      result.candidate_signatures.reserve(candidates.size());
      for (const auto& cand : candidates) {
        result.candidate_signatures.push_back(cand->Explain(false));
      }
      if (sel.hedged && sel.runner_up >= 0) {
        result.fallback_plan =
            candidates[static_cast<size_t>(sel.runner_up)]->Clone();
        coster_.Cost(result.fallback_plan.get());
      }
      root = std::move(candidates[static_cast<size_t>(sel.chosen)]);
      result.robust_report = std::move(sel);
    }
  }

  // 6. POP checkpoints. A hedged robust winner arms CHECKs even when POP is
  // off — the probes are what trigger the switch to the fallback.
  if (options_.add_pop_checks || result.hedged) InsertChecks(root.get());

  coster_.Cost(root.get());
  result.plan = std::move(root);
  return result;
}

}  // namespace rqp
