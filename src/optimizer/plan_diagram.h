#ifndef RQP_OPTIMIZER_PLAN_DIAGRAM_H_
#define RQP_OPTIMIZER_PLAN_DIAGRAM_H_

#include <string>
#include <vector>

#include "optimizer/optimizer.h"

namespace rqp {

/// Plan diagram machinery (Reddy & Haritsa VLDB'05; reduction per Harish et
/// al. PVLDB'08, both in the seminar's reading list and its §4 sessions):
/// a 2-D grid over the selectivities of two query dimensions, colored by
/// the optimizer's plan choice; "anorexic" reduction recolors cells to a
/// small set of plans such that no cell's cost degrades by more than
/// (1 + lambda).
struct PlanDiagramOptions {
  int grid = 16;             ///< grid resolution per axis
  std::string x_table;       ///< table whose scan selectivity is the x axis
  std::string y_table;       ///< table whose scan selectivity is the y axis
  double min_selectivity = 0.001;
  double max_selectivity = 1.0;
  bool log_scale = true;
};

class PlanDiagram {
 public:
  int grid = 0;
  std::vector<double> sel_x, sel_y;       ///< axis selectivities
  std::vector<int> plan_at;               ///< grid*grid cell -> plan index
  std::vector<std::string> signatures;    ///< distinct plan signatures
  std::vector<PlanNodePtr> plans;         ///< representative plan instances
  std::vector<double> optimal_cost_at;    ///< optimizer's cost per cell

  int num_plans() const { return static_cast<int>(signatures.size()); }
  int cell(int x, int y) const { return y * grid + x; }
  /// Fraction of cells colored with `plan`.
  double AreaFraction(int plan) const;
};

/// Computes the plan diagram for `spec`. The per-cell selectivities are
/// injected through CardinalityModel scan-selectivity overrides, so the
/// diagram explores exactly the optimizer's decision surface.
StatusOr<PlanDiagram> ComputePlanDiagram(const Catalog* catalog,
                                         const StatsCatalog* stats,
                                         const QuerySpec& spec,
                                         const PlanDiagramOptions& options,
                                         const OptimizerOptions& opt_options);

/// cost[p][cell]: every representative plan recosted at every cell's
/// selectivities — shared by anorexic reduction and penalty scoring.
std::vector<std::vector<double>> PlanCostMatrix(
    const PlanDiagram& diagram, const StatsCatalog* stats,
    const PlanDiagramOptions& options, const OptimizerOptions& opt_options);

struct DiagramPlanPenalty {
  int plan = -1;                ///< index into diagram.signatures
  double expected_penalty = 0;  ///< mean over cells of cost − optimal
  double worst_penalty = 0;     ///< max over cells of cost − optimal
};

/// The penalty of committing to a single plan across the whole diagram —
/// the plan-diagram view of penalty-aware robust selection: the plan with
/// the smallest expected penalty is the one you would pick if forced to
/// choose before learning which cell (selectivity) is real. One entry per
/// diagram plan, in plan-index order.
std::vector<DiagramPlanPenalty> DiagramPenalties(
    const PlanDiagram& diagram, const std::vector<std::vector<double>>& cost);

struct ReductionResult {
  std::vector<int> plan_at;  ///< recolored diagram
  int plans_before = 0;
  int plans_after = 0;
  /// max over cells of cost(new plan at cell) / cost(original optimal),
  /// the realized worst-case penalty (<= 1 + lambda by construction).
  double max_blowup = 1.0;
};

/// Greedy anorexic reduction with swallowing threshold `lambda`
/// (e.g. 0.2 = 20%). Needs the catalog/stats to recost plans at foreign
/// cells.
StatusOr<ReductionResult> ReducePlanDiagram(
    const PlanDiagram& diagram, double lambda, const Catalog* catalog,
    const StatsCatalog* stats, const PlanDiagramOptions& options,
    const OptimizerOptions& opt_options);

}  // namespace rqp

#endif  // RQP_OPTIMIZER_PLAN_DIAGRAM_H_
