#include "optimizer/cardinality.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

namespace rqp {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || *end != '\0') return fallback;
  return v;
}

}  // namespace

CardinalityOptions ResolveCardinalityOptions(CardinalityOptions options) {
  if (options.percentile <= 0.0) {
    options.percentile = EnvDouble("RQP_PLAN_PERCENTILE", 0.5);
  }
  if (options.percentile <= 0.0 || options.percentile >= 1.0) {
    options.percentile = 0.5;
  }
  if (options.sigma_per_term < 0.0) {
    options.sigma_per_term = EnvDouble("RQP_SIGMA_PER_TERM", 0.8);
  }
  if (options.sigma_per_term < 0.0) options.sigma_per_term = 0.8;
  return options;
}

double InverseNormalCdf(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's approximation; absolute error < 1.15e-9.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

bool SplitSlot(const std::string& slot, std::string* table,
               std::string* column) {
  const size_t dot = slot.find('.');
  if (dot == std::string::npos) return false;
  *table = slot.substr(0, dot);
  *column = slot.substr(dot + 1);
  return true;
}

double CardinalityModel::TableRows(const std::string& table) const {
  const TableStats* ts = stats_->Find(table);
  if (ts == nullptr) return 1000.0;  // magic default for unknown tables
  return std::max<double>(1.0, static_cast<double>(ts->row_count()));
}

SelectivityEstimator CardinalityModel::MakeEstimator(
    const std::string& table) const {
  const TableStats* ts = stats_->Find(table);
  const CorrelationInfo* corr = nullptr;
  if (correlations_ != nullptr) {
    auto it = correlations_->find(table);
    if (it != correlations_->end()) corr = it->second;
  }
  return SelectivityEstimator(table, ts, options_.estimator, corr, feedback_,
                              st_store_);
}

double CardinalityModel::Shift(const SelEstimate& e) const {
  if (options_.percentile == 0.5) return e.value;
  const int terms = e.independence_terms + 2 * e.guessed_terms;
  if (terms == 0) return e.value;
  const double z = InverseNormalCdf(options_.percentile);
  const double sigma = options_.sigma_per_term * std::sqrt(
      static_cast<double>(terms));
  return std::min(1.0, e.value * std::exp(z * sigma));
}

double CardinalityModel::ScanSelectivity(const std::string& table,
                                         const PredicatePtr& pred) const {
  return Shift(ScanEstimate(table, pred));
}

SelEstimate CardinalityModel::ScanEstimate(const std::string& table,
                                           const PredicatePtr& pred) const {
  auto it = scan_override_.find(table);
  if (it != scan_override_.end()) return {it->second, 0, 0};
  if (pred == nullptr) return {1.0, 0, 0};
  PredicatePtr effective = pred;
  if (!peek_params_.empty() && HasParams(pred)) {
    effective = BindParams(pred, peek_params_);  // bind peeking
  }
  SelectivityEstimator est = MakeEstimator(table);
  return est.EstimateWithPedigree(effective);
}

double CardinalityModel::QualifiedSelectivity(const PredicatePtr& pred) const {
  if (pred == nullptr) return 1.0;
  return std::visit(
      [&](const auto& n) -> double {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Conjunction>) {
          double s = 1.0;
          for (const auto& c : n.children) s *= QualifiedSelectivity(c);
          return s;
        } else if constexpr (std::is_same_v<T, Disjunction>) {
          double s = 1.0;
          for (const auto& c : n.children) s *= 1.0 - QualifiedSelectivity(c);
          return 1.0 - s;
        } else if constexpr (std::is_same_v<T, Negation>) {
          return 1.0 - QualifiedSelectivity(n.child);
        } else if constexpr (std::is_same_v<T, ConstPred>) {
          return n.value ? 1.0 : 0.0;
        } else if constexpr (std::is_same_v<T, ColumnCmp>) {
          // Residual join predicate (possibly across tables): equality uses
          // the 1/max(ndv) join rule; inequalities the magic 1/3.
          if (n.op == CmpOp::kEq) {
            return JoinSelectivity(n.left_column, n.right_column);
          }
          if (n.op == CmpOp::kNe) {
            return 1.0 - JoinSelectivity(n.left_column, n.right_column);
          }
          return options_.estimator.default_range_selectivity;
        } else {
          // Leaf: dispatch to the owning table's estimator with the column
          // name unqualified.
          std::string table, column;
          std::string leaf_col;
          if constexpr (std::is_same_v<T, Comparison>) leaf_col = n.column;
          else if constexpr (std::is_same_v<T, Between>) leaf_col = n.column;
          else leaf_col = n.column;
          if (!SplitSlot(leaf_col, &table, &column)) {
            return options_.estimator.default_range_selectivity;
          }
          T leaf = n;
          leaf.column = column;
          auto unqualified =
              std::make_shared<Predicate>(Predicate{std::move(leaf)});
          SelectivityEstimator est = MakeEstimator(table);
          return Shift(est.EstimateWithPedigree(unqualified));
        }
      },
      pred->node);
}

double CardinalityModel::DistinctValues(const std::string& table,
                                        const std::string& column) const {
  const TableStats* ts = stats_->Find(table);
  if (ts == nullptr || !ts->HasColumn(column)) return 100.0;
  return std::max<double>(1.0,
                          static_cast<double>(ts->column(column).num_distinct));
}

double CardinalityModel::JoinSelectivity(const std::string& left_slot,
                                         const std::string& right_slot) const {
  return Shift(JoinEstimate(left_slot, right_slot));
}

SelEstimate CardinalityModel::JoinEstimate(const std::string& left_slot,
                                           const std::string& right_slot)
    const {
  auto ov = join_override_.find(JoinKey(left_slot, right_slot));
  if (ov != join_override_.end()) return {ov->second, 0, 0};
  std::string lt, lc, rt, rc;
  double ndv = 100.0;
  bool stats_backed = false;
  bool key_join = false;
  if (SplitSlot(left_slot, &lt, &lc) && SplitSlot(right_slot, &rt, &rc)) {
    ndv = std::max(DistinctValues(lt, lc), DistinctValues(rt, rc));
    auto unique_key = [&](const std::string& t, const std::string& c) {
      const TableStats* ts = stats_->Find(t);
      if (ts == nullptr || !ts->HasColumn(c) || ts->row_count() <= 0) {
        return false;
      }
      return static_cast<double>(ts->column(c).num_distinct) >=
             0.99 * static_cast<double>(ts->row_count());
    };
    auto has = [&](const std::string& t, const std::string& c) {
      const TableStats* ts = stats_->Find(t);
      return ts != nullptr && ts->HasColumn(c);
    };
    stats_backed = has(lt, lc) || has(rt, rc);
    key_join = unique_key(lt, lc) || unique_key(rt, rc);
  }
  // Pedigree: 1/max(ndv) assumes containment + uniform key frequencies.
  // When one side is a unique key (ndv ≈ rows) the containment estimate is
  // well-grounded — a PK–FK join carries no independence term; a general
  // (many-to-many) join carries one. Without distinct-count stats the
  // 100.0 default is a magic-number guess on top.
  return {1.0 / std::max(1.0, ndv), key_join && stats_backed ? 0 : 1,
          stats_backed ? 0 : 1};
}

}  // namespace rqp
