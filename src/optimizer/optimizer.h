#ifndef RQP_OPTIMIZER_OPTIMIZER_H_
#define RQP_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "optimizer/cardinality.h"
#include "optimizer/cost.h"
#include "optimizer/plan.h"
#include "optimizer/robust_select.h"
#include "storage/table.h"

namespace rqp {

/// One base-table reference with an optional local (unqualified) predicate.
struct TableRef {
  std::string table;
  PredicatePtr predicate;  ///< may be null
};

/// Equi-join edge between two base tables.
struct JoinEdge {
  std::string left_table, left_column;
  std::string right_table, right_column;

  std::string LeftSlot() const { return left_table + "." + left_column; }
  std::string RightSlot() const { return right_table + "." + right_column; }
};

/// A select-project-join-aggregate query. The engine's logical input — a
/// deliberately SQL-free spec (queries in the experiments are generated
/// programmatically).
struct QuerySpec {
  std::vector<TableRef> tables;
  std::vector<JoinEdge> joins;
  /// Derived columns computed above the join tree (expression-VM Map node);
  /// their names become slots visible to group_by/aggregates.
  std::vector<DerivedColumn> derived;
  std::vector<std::string> group_by;  ///< qualified slots
  std::vector<AggSpec> aggregates;    ///< empty = no aggregation node
  std::vector<int64_t> params;        ///< parameter bindings (may be empty)
};

/// Intermediate result carried over from a POP checkpoint into
/// re-optimization: plays the role of a base relation covering a set of
/// already-joined tables, with exactly known cardinality.
struct MaterializedLeaf {
  std::vector<std::string> covered_tables;
  std::vector<std::string> slots;
  int64_t rows = 0;
  std::shared_ptr<std::vector<RowBatch>> batches;
};

/// Join algorithms the validity-range prober reasons about.
enum class JoinMethod { kHashBuildRight, kHashBuildLeft, kSortMerge,
                        kIndexNLRight };

struct OptimizerOptions {
  CostParams cost;
  bool consider_index_scan = true;
  bool consider_sort_merge = true;
  bool consider_index_nl = true;
  /// Robust execution: emit a single GJoin for every join instead of
  /// choosing among the three traditional algorithms (E15).
  bool use_gjoin = false;
  /// POP: insert CHECK operators with validity ranges above join inputs.
  bool add_pop_checks = false;
  /// 0 = derive validity ranges by sensitivity probing; > 1 = fixed factor
  /// [est/f, est*f].
  double check_factor = 0.0;
  /// Bind parameter markers before optimizing (true) or optimize a generic
  /// plan with magic-number selectivities (false; the late-binding hazard).
  bool bind_params_at_optimization = true;
  /// DP is used up to this many leaves; greedy join ordering beyond.
  int max_dp_tables = 12;
  /// Heuristic optimizer termination (E20): abort DP and fall back to
  /// greedy once this many candidate plans have been costed (0 = no limit).
  int64_t enumeration_budget = 0;
  /// Normalize predicates before sargable-range extraction so equivalent
  /// formulations get the same access path. Off = the fragile syntactic
  /// matching that the §5.1 equivalence benchmark exposes.
  bool normalize_for_sargable = true;
  /// Penalty-aware robust plan selection (PARQO; DESIGN.md §12): retain
  /// top-K enumeration candidates, re-cost them over deterministic
  /// perturbations of the selectivity error bands, choose by expected
  /// penalty, and hedge with the runner-up when no candidate is flat.
  RobustSelectionOptions robust_selection;
};

struct OptimizationResult {
  PlanNodePtr plan;
  int64_t plans_considered = 0;
  bool used_greedy = false;
  /// Robust selection (OptimizerOptions::robust_selection / $RQP_ROBUST_PLAN):
  bool robust_used = false;  ///< the plan was chosen by penalty scoring
  bool hedged = false;       ///< steep surface: CHECKs armed + fallback set
  /// Runner-up candidate pre-computed as the mid-query fallback: when a
  /// hedged winner's CHECK fires (or the guardrails trip), the engine
  /// switches to this already-scored plan instead of re-optimizing.
  PlanNodePtr fallback_plan;
  /// Per-candidate penalty scores, parallel to `candidate_signatures`
  /// (diagnostics and the penalty-table benches).
  RobustSelection robust_report;
  std::vector<std::string> candidate_signatures;
};

/// Cost-based optimizer: access-path selection, DP (DPsize) join
/// enumeration with a greedy fallback, join-method choice, optional POP
/// checkpoints, optional robust (percentile) cardinalities via the
/// CardinalityModel, and re-optimization from materialized intermediates.
class Optimizer {
 public:
  Optimizer(const Catalog* catalog, const CardinalityModel* card,
            OptimizerOptions options)
      : catalog_(catalog), card_(card), options_(std::move(options)),
        coster_(card_, options_.cost) {}

  /// Optimizes `spec`. `materialized` (if any) replace their covered tables
  /// as ready-made leaves (the POP re-optimization entry point).
  StatusOr<OptimizationResult> Optimize(
      const QuerySpec& spec,
      const std::vector<MaterializedLeaf>& materialized = {}) const;

  /// Marginal-cost winner among the applicable join methods for inputs of
  /// the given cardinalities (used by validity-range probing and tests).
  /// `right_cost` is the cost of *producing* the right input — paid by
  /// hash/merge joins but avoided entirely by index nested loops, which
  /// probes the persistent index instead.
  JoinMethod BestJoinMethod(double left_rows, double right_rows, double jsel,
                            bool index_nl_available,
                            double right_cost = 0.0) const;

  /// Marginal cost of one join method at the given input sizes.
  double JoinMethodCost(JoinMethod method, double left_rows,
                        double right_rows, double jsel,
                        double right_cost = 0.0) const;

  /// Validity range (on the left child's cardinality) within which
  /// `chosen` — the method the plan actually uses — stays within `slack`
  /// of the best method's marginal cost. Near-optimal is good enough:
  /// re-optimizing over a hair's-width tie would thrash. Probes
  /// multipliers in steps of sqrt(2) out to 2^16.
  std::pair<int64_t, int64_t> ValidityRange(JoinMethod chosen,
                                            double left_rows,
                                            double right_rows, double jsel,
                                            bool index_nl_available,
                                            double right_cost = 0.0,
                                            double slack = 1.3) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  struct Unit;  // enumeration leaf (base table or materialized intermediate)

  /// `sink` (when non-null) additionally receives every costed alternative,
  /// not just the winner — the robust selector's candidate feed.
  PlanNodePtr MakeLeafPlan(const Unit& unit,
                           std::vector<PlanNodePtr>* sink = nullptr) const;
  /// Best join of `left` and `right` given the connecting edges (the first
  /// is the physical join key; extra edges — cyclic join graphs — become a
  /// residual column-comparison filter above the join); returns null when
  /// no edge connects (caller falls back to NLJ cross product).
  PlanNodePtr MakeJoinPlan(const PlanNode& left, const PlanNode& right,
                           const std::vector<const JoinEdge*>& edges,
                           const std::vector<Unit>& units,
                           int64_t* plans_considered, int* id_counter,
                           std::vector<PlanNodePtr>* sink = nullptr) const;
  void InsertChecks(PlanNode* node) const;

  const Catalog* catalog_;
  const CardinalityModel* card_;
  OptimizerOptions options_;
  PlanCoster coster_;
};

/// Extracts a sargable range on `column` from a (normalized) conjunction:
/// returns true and fills lo/hi/residual when the predicate constrains
/// `column` to one contiguous range. `residual` is the remainder (may be
/// null when the range was the whole predicate).
/// With `normalize` false the extraction is purely syntactic (only literal
/// Between/Eq/Ge/Le conjuncts are recognized) — the fragile behavior the
/// equivalence-robustness experiment measures.
bool ExtractSargableRange(const PredicatePtr& pred, const std::string& column,
                          int64_t* lo, int64_t* hi, PredicatePtr* residual,
                          bool normalize = true);

/// Late-binding variant: recognizes the parameterized pattern
/// `column >= ?i AND column <= ?j` (both bounds must be parameters) and
/// returns the parameter indexes; the rest of the conjunction becomes the
/// residual. Enables index plans whose bounds are resolved at run time.
bool ExtractParamRange(const PredicatePtr& pred, const std::string& column,
                       int* lo_param, int* hi_param, PredicatePtr* residual);

}  // namespace rqp

#endif  // RQP_OPTIMIZER_OPTIMIZER_H_
