#include "optimizer/plan_diagram.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "optimizer/cost.h"

namespace rqp {
namespace {

std::vector<double> Axis(const PlanDiagramOptions& o) {
  std::vector<double> sels(static_cast<size_t>(o.grid));
  for (int i = 0; i < o.grid; ++i) {
    const double t =
        o.grid == 1 ? 0.0 : static_cast<double>(i) / (o.grid - 1);
    if (o.log_scale) {
      sels[static_cast<size_t>(i)] =
          o.min_selectivity *
          std::pow(o.max_selectivity / o.min_selectivity, t);
    } else {
      sels[static_cast<size_t>(i)] =
          o.min_selectivity + t * (o.max_selectivity - o.min_selectivity);
    }
  }
  return sels;
}

}  // namespace

double PlanDiagram::AreaFraction(int plan) const {
  if (plan_at.empty()) return 0.0;
  int64_t n = 0;
  for (int p : plan_at) {
    if (p == plan) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(plan_at.size());
}

StatusOr<PlanDiagram> ComputePlanDiagram(const Catalog* catalog,
                                         const StatsCatalog* stats,
                                         const QuerySpec& spec,
                                         const PlanDiagramOptions& options,
                                         const OptimizerOptions& opt_options) {
  PlanDiagram diagram;
  diagram.grid = options.grid;
  diagram.sel_x = Axis(options);
  diagram.sel_y = Axis(options);
  diagram.plan_at.assign(static_cast<size_t>(options.grid) * options.grid, -1);
  diagram.optimal_cost_at.assign(diagram.plan_at.size(), 0.0);

  std::map<std::string, int> index_of;
  for (int y = 0; y < options.grid; ++y) {
    for (int x = 0; x < options.grid; ++x) {
      CardinalityModel model(stats);
      model.SetScanSelectivityOverride(options.x_table,
                                       diagram.sel_x[static_cast<size_t>(x)]);
      model.SetScanSelectivityOverride(options.y_table,
                                       diagram.sel_y[static_cast<size_t>(y)]);
      Optimizer optimizer(catalog, &model, opt_options);
      auto result = optimizer.Optimize(spec);
      if (!result.ok()) return result.status();
      const std::string sig = result->plan->Explain(false);
      auto [it, inserted] =
          index_of.emplace(sig, static_cast<int>(diagram.signatures.size()));
      if (inserted) {
        diagram.signatures.push_back(sig);
        diagram.plans.push_back(result->plan->Clone());
      }
      const int cell = diagram.cell(x, y);
      diagram.plan_at[static_cast<size_t>(cell)] = it->second;
      diagram.optimal_cost_at[static_cast<size_t>(cell)] =
          result->plan->est_cost;
    }
  }
  return diagram;
}

std::vector<std::vector<double>> PlanCostMatrix(
    const PlanDiagram& diagram, const StatsCatalog* stats,
    const PlanDiagramOptions& options, const OptimizerOptions& opt_options) {
  const size_t cells = diagram.plan_at.size();
  const int num_plans = diagram.num_plans();
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(num_plans), std::vector<double>(cells, 0.0));
  for (int p = 0; p < num_plans; ++p) {
    for (int y = 0; y < diagram.grid; ++y) {
      for (int x = 0; x < diagram.grid; ++x) {
        CardinalityModel model(stats);
        model.SetScanSelectivityOverride(
            options.x_table, diagram.sel_x[static_cast<size_t>(x)]);
        model.SetScanSelectivityOverride(
            options.y_table, diagram.sel_y[static_cast<size_t>(y)]);
        PlanCoster coster(&model, opt_options.cost);
        auto clone = diagram.plans[static_cast<size_t>(p)]->Clone();
        coster.Cost(clone.get());
        cost[static_cast<size_t>(p)]
            [static_cast<size_t>(diagram.cell(x, y))] = clone->est_cost;
      }
    }
  }
  return cost;
}

std::vector<DiagramPlanPenalty> DiagramPenalties(
    const PlanDiagram& diagram,
    const std::vector<std::vector<double>>& cost) {
  const size_t cells = diagram.plan_at.size();
  std::vector<DiagramPlanPenalty> penalties;
  for (int p = 0; p < diagram.num_plans(); ++p) {
    DiagramPlanPenalty dp;
    dp.plan = p;
    for (size_t c = 0; c < cells; ++c) {
      const double pen =
          cost[static_cast<size_t>(p)][c] - diagram.optimal_cost_at[c];
      dp.expected_penalty += pen;
      dp.worst_penalty = std::max(dp.worst_penalty, pen);
    }
    if (cells > 0) dp.expected_penalty /= static_cast<double>(cells);
    penalties.push_back(dp);
  }
  return penalties;
}

StatusOr<ReductionResult> ReducePlanDiagram(
    const PlanDiagram& diagram, double lambda, const Catalog* catalog,
    const StatsCatalog* stats, const PlanDiagramOptions& options,
    const OptimizerOptions& opt_options) {
  (void)catalog;
  ReductionResult result;
  result.plan_at = diagram.plan_at;
  result.plans_before = diagram.num_plans();

  const size_t cells = diagram.plan_at.size();
  const int num_plans = diagram.num_plans();
  const std::vector<std::vector<double>> cost =
      PlanCostMatrix(diagram, stats, options, opt_options);

  // Greedy swallowing, smallest-area plans first (CostGreedy flavor): a
  // plan is eliminated if every one of its cells can be recolored to some
  // surviving plan within the (1 + lambda) cost threshold.
  std::vector<int> order(static_cast<size_t>(num_plans));
  for (int p = 0; p < num_plans; ++p) order[static_cast<size_t>(p)] = p;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return diagram.AreaFraction(a) < diagram.AreaFraction(b);
  });
  std::vector<bool> alive(static_cast<size_t>(num_plans), true);

  for (int victim : order) {
    // Tentative recoloring of the victim's cells.
    std::vector<std::pair<size_t, int>> recolor;
    bool can_swallow = true;
    for (size_t c = 0; c < cells; ++c) {
      if (result.plan_at[c] != victim) continue;
      const double budget =
          (1.0 + lambda) * diagram.optimal_cost_at[c];
      int best_plan = -1;
      double best_cost = 0;
      for (int p = 0; p < num_plans; ++p) {
        if (p == victim || !alive[static_cast<size_t>(p)]) continue;
        const double pc = cost[static_cast<size_t>(p)][c];
        if (pc <= budget && (best_plan < 0 || pc < best_cost)) {
          best_plan = p;
          best_cost = pc;
        }
      }
      if (best_plan < 0) {
        can_swallow = false;
        break;
      }
      recolor.push_back({c, best_plan});
    }
    if (can_swallow && !recolor.empty()) {
      for (const auto& [c, p] : recolor) result.plan_at[c] = p;
      alive[static_cast<size_t>(victim)] = false;
    }
  }

  result.plans_after = 0;
  std::vector<bool> used(static_cast<size_t>(num_plans), false);
  for (int p : result.plan_at) used[static_cast<size_t>(p)] = true;
  for (int p = 0; p < num_plans; ++p) {
    if (used[static_cast<size_t>(p)]) ++result.plans_after;
  }
  result.max_blowup = 1.0;
  for (size_t c = 0; c < cells; ++c) {
    const double base = std::max(1e-12, diagram.optimal_cost_at[c]);
    result.max_blowup = std::max(
        result.max_blowup,
        cost[static_cast<size_t>(result.plan_at[c])][c] / base);
  }
  return result;
}

}  // namespace rqp
