#ifndef RQP_OPTIMIZER_ROBUST_SELECT_H_
#define RQP_OPTIMIZER_ROBUST_SELECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "optimizer/cardinality.h"
#include "optimizer/cost.h"
#include "optimizer/plan.h"

namespace rqp {

/// PARQO-style penalty-aware plan selection (DESIGN.md §12). Instead of
/// committing to the cost-minimal plan at point estimates, the optimizer
/// retains a top-K candidate set from enumeration, samples deterministic
/// perturbation points over each uncertain selectivity's error band (bands
/// derived from the SelEstimate pedigree), re-costs every candidate at every
/// point, and picks the candidate with the lowest expected penalty — the
/// flat cost surface — subject to a worst-case cap. When even the winner's
/// surface is steep, the selection is "hedged": the engine arms POP CHECK
/// probes and keeps the runner-up as a pre-scored mid-query fallback.
struct RobustSelectionOptions {
  /// Tri-state: -1 = resolve from $RQP_ROBUST_PLAN (unset or "0" = off),
  /// 0 = off, 1 = on.
  int enabled = -1;
  /// Candidate plans retained from enumeration (distinct join orders and
  /// methods, deduplicated by structural signature).
  int top_k = 8;
  /// Perturbation points sampled over the error bands. Sample 0 is always
  /// the unperturbed center, so `samples` = 1 degenerates to nominal
  /// costing.
  int samples = 24;
  /// Seed for the perturbation sampler; the whole selection is a pure
  /// function of (candidates, bands, options), so equal seeds give
  /// bit-identical scores and choices.
  uint64_t seed = 17;
  /// Penalty-vs-nominal trade-off: score = expected penalty +
  /// nominal_tradeoff * nominal cost. 0 = pure expected penalty; large
  /// values recover classical nominal-cost optimization.
  double nominal_tradeoff = 0.10;
  /// Candidates whose worst sampled cost exceeds cap × the best worst-case
  /// among all candidates are rejected before the expected-penalty
  /// comparison (<= 0 disables the cap).
  double worst_case_cap = 3.0;
  /// Hedge when the winner's worst sampled penalty exceeds this fraction of
  /// its nominal cost: no flat candidate exists, so arm CHECK probes and
  /// pre-compute the fallback. <= 0 = always hedge (given >= 2 candidates).
  double hedge_threshold = 0.5;
  /// Floor for perturbed selectivities.
  double min_selectivity = 1e-6;
};

/// Resolves the tri-state `enabled` against $RQP_ROBUST_PLAN.
bool RobustSelectionEnabled(int enabled);

/// One uncertain selectivity dimension of the query: a scanned table's
/// local predicate or a join edge. `center` is the unshifted point
/// estimate; `sigma` the log-normal spread derived from its pedigree.
struct PerturbDimension {
  enum class Kind { kScan, kJoin };
  Kind kind = Kind::kScan;
  std::string table;                   ///< scan dimensions
  std::string left_slot, right_slot;   ///< join dimensions
  double center = 1.0;
  double sigma = 0.0;
};

/// Band spread for a pedigree under the same log-normal model as the
/// Babcock–Chaudhuri percentile shift: sigma_per_term * sqrt(terms) with
/// terms = independence_terms + 2 * guessed_terms. Zero-term pedigrees
/// (histogram- or feedback-backed estimates) collapse to the point.
double BandSigma(const SelEstimate& e, double sigma_per_term);

/// Deterministic perturbation points: points[s][d] is dimension d's
/// selectivity at sample s, drawn log-normally around its center and
/// clamped to [min_selectivity, 1]. Sample 0 is the unperturbed center.
std::vector<std::vector<double>> MakePerturbationPoints(
    const std::vector<PerturbDimension>& dims,
    const RobustSelectionOptions& options);

struct CandidateScore {
  double nominal_cost = 0.0;      ///< cost at the center point
  double expected_penalty = 0.0;  ///< mean over samples of cost − best cost
  double worst_penalty = 0.0;     ///< max over samples of cost − best cost
  double worst_cost = 0.0;        ///< max over samples of cost
  bool capped = false;            ///< rejected by the worst-case cap
};

struct RobustSelection {
  int chosen = -1;
  int runner_up = -1;  ///< hedge fallback; -1 with fewer than 2 candidates
  bool hedged = false; ///< no flat candidate: arm checks + fallback
  int dimensions = 0;  ///< dimensions with non-zero band width
  int samples = 0;
  std::vector<CandidateScore> scores;  ///< parallel to the candidate vector
};

/// Scores `candidates` over the perturbation points of `dims` (re-costing
/// each candidate at each point through a copy of `model` with scan/join
/// selectivity overrides) and selects by expected penalty with the
/// worst-case cap and nominal trade-off of `options`. Pure and
/// deterministic: same inputs → identical scores and choice.
RobustSelection SelectRobustPlan(const std::vector<PlanNodePtr>& candidates,
                                 const std::vector<PerturbDimension>& dims,
                                 const CardinalityModel& model,
                                 const CostParams& cost_params,
                                 const RobustSelectionOptions& options);

}  // namespace rqp

#endif  // RQP_OPTIMIZER_ROBUST_SELECT_H_
