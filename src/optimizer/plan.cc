#include "optimizer/plan.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace rqp {

const char* PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kTableScan: return "TableScan";
    case PlanOp::kIndexScan: return "IndexScan";
    case PlanOp::kMaterializedSource: return "MaterializedSource";
    case PlanOp::kFilter: return "Filter";
    case PlanOp::kHashJoin: return "HashJoin";
    case PlanOp::kMergeJoin: return "MergeJoin";
    case PlanOp::kIndexNLJoin: return "IndexNLJoin";
    case PlanOp::kNestedLoopsJoin: return "NestedLoopsJoin";
    case PlanOp::kGJoin: return "GJoin";
    case PlanOp::kMap: return "Map";
    case PlanOp::kSort: return "Sort";
    case PlanOp::kHashAgg: return "HashAgg";
    case PlanOp::kCheck: return "Check";
  }
  return "?";
}

PlanNodePtr NewPlanNode(PlanOp op, int* counter) {
  auto node = std::make_unique<PlanNode>();
  node->op = op;
  node->id = (*counter)++;
  return node;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->op = op;
  copy->id = id;
  copy->table = table;
  copy->predicate = predicate;
  copy->index_column = index_column;
  copy->index_lo = index_lo;
  copy->index_hi = index_hi;
  copy->index_lo_param = index_lo_param;
  copy->index_hi_param = index_hi_param;
  copy->left_key = left_key;
  copy->right_key = right_key;
  copy->sort_key = sort_key;
  copy->derived = derived;
  copy->group_by = group_by;
  copy->aggregates = aggregates;
  copy->check_lo = check_lo;
  copy->check_hi = check_hi;
  copy->materialized = materialized;
  copy->materialized_slots = materialized_slots;
  copy->materialized_rows = materialized_rows;
  copy->covered_tables = covered_tables;
  copy->est_rows = est_rows;
  copy->est_cost = est_cost;
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

namespace {
void ExplainRec(const PlanNode& node, bool with_estimates, int depth,
                std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << PlanOpName(node.op);
  switch (node.op) {
    case PlanOp::kTableScan:
      *os << "(" << node.table;
      if (node.predicate) *os << ", " << ToString(node.predicate);
      *os << ")";
      break;
    case PlanOp::kIndexScan:
      *os << "(" << node.table << "." << node.index_column << " in [";
      if (node.index_lo_param >= 0) *os << "?" << node.index_lo_param;
      else *os << node.index_lo;
      *os << ", ";
      if (node.index_hi_param >= 0) *os << "?" << node.index_hi_param;
      else *os << node.index_hi;
      *os << "]";
      if (node.predicate) *os << ", " << ToString(node.predicate);
      *os << ")";
      break;
    case PlanOp::kMaterializedSource:
      *os << "(rows=" << node.materialized_rows << ")";
      break;
    case PlanOp::kFilter:
      *os << "(" << (node.predicate ? ToString(node.predicate) : "") << ")";
      break;
    case PlanOp::kHashJoin:
    case PlanOp::kMergeJoin:
    case PlanOp::kGJoin:
      *os << "(" << node.left_key << " = " << node.right_key << ")";
      break;
    case PlanOp::kIndexNLJoin:
      *os << "(" << node.left_key << " -> " << node.table << "."
          << node.index_column << ")";
      break;
    case PlanOp::kNestedLoopsJoin:
      *os << "(" << (node.predicate ? ToString(node.predicate) : "cross")
          << ")";
      break;
    case PlanOp::kMap: {
      *os << "(";
      for (size_t i = 0; i < node.derived.size(); ++i) {
        if (i) *os << ", ";
        *os << node.derived[i].name << " = " << ToString(node.derived[i].expr);
      }
      *os << ")";
      break;
    }
    case PlanOp::kSort:
      *os << "(" << node.sort_key << ")";
      break;
    case PlanOp::kHashAgg: {
      *os << "(groups=";
      for (size_t i = 0; i < node.group_by.size(); ++i) {
        if (i) *os << ",";
        *os << node.group_by[i];
      }
      *os << ")";
      break;
    }
    case PlanOp::kCheck:
      if (with_estimates) {
        *os << "(valid=[" << node.check_lo << ", " << node.check_hi << "])";
      } else {
        *os << "()";  // validity ranges are estimate-dependent
      }
      break;
  }
  if (with_estimates) {
    *os << "  [rows=" << static_cast<long long>(node.est_rows)
        << " cost=" << node.est_cost << "]";
  }
  *os << "\n";
  for (const auto& c : node.children) {
    ExplainRec(*c, with_estimates, depth + 1, os);
  }
}

void CollectTables(const PlanNode& node, std::set<std::string>* out) {
  if (!node.table.empty()) out->insert(node.table);
  for (const auto& t : node.covered_tables) out->insert(t);
  for (const auto& c : node.children) CollectTables(*c, out);
}
}  // namespace

std::string PlanNode::Explain(bool with_estimates) const {
  std::ostringstream os;
  ExplainRec(*this, with_estimates, 0, &os);
  return os.str();
}

std::vector<std::string> PlanNode::BaseTables() const {
  std::set<std::string> tables;
  CollectTables(*this, &tables);
  return {tables.begin(), tables.end()};
}

}  // namespace rqp
