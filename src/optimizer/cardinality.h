#ifndef RQP_OPTIMIZER_CARDINALITY_H_
#define RQP_OPTIMIZER_CARDINALITY_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stats/correlation.h"
#include "stats/feedback.h"
#include "stats/selectivity.h"
#include "stats/table_stats.h"

namespace rqp {

/// Inverse of the standard normal CDF (Acklam's rational approximation).
/// Used to shift selectivity estimates to a confidence percentile for the
/// Babcock–Chaudhuri robust plan choice.
double InverseNormalCdf(double p);

struct CardinalityOptions {
  EstimatorOptions estimator;
  /// Plan-choice percentile over the selectivity uncertainty distribution.
  /// 0.5 = classical expected-value optimization. Higher values inflate
  /// uncertain estimates (log-normal model whose spread grows with the
  /// number of independence multiplications and magic-number guesses),
  /// trading average-case speed for tail robustness. The sentinel 0 (the
  /// default) resolves from $RQP_PLAN_PERCENTILE, falling back to 0.5.
  double percentile = 0.0;
  /// Log-scale spread contributed by each uncertain derivation step. The
  /// sentinel -1 (the default) resolves from $RQP_SIGMA_PER_TERM, falling
  /// back to 0.8.
  double sigma_per_term = -1.0;
};

/// Fills sentinel fields from the environment ($RQP_PLAN_PERCENTILE,
/// $RQP_SIGMA_PER_TERM). Applied by the CardinalityModel constructor so
/// every model — engine, plan diagrams, metric sweeps — resolves the knobs
/// the same way; explicitly set values always win.
CardinalityOptions ResolveCardinalityOptions(CardinalityOptions options);

/// The optimizer's view of cardinalities: per-table row counts, selection
/// selectivities, join selectivities, and distinct counts — everything the
/// DP enumeration and the PlanCoster need. Supports per-table scan
/// selectivity overrides (plan-diagram recosting, POP corrected estimates).
class CardinalityModel {
 public:
  CardinalityModel(const StatsCatalog* stats, CardinalityOptions options = {},
                   const std::map<std::string, const CorrelationInfo*>*
                       correlations = nullptr,
                   const FeedbackCache* feedback = nullptr,
                   const StHistogramStore* st_store = nullptr)
      : stats_(stats), options_(ResolveCardinalityOptions(options)),
        correlations_(correlations), feedback_(feedback),
        st_store_(st_store) {}

  /// Believed row count of a base table.
  double TableRows(const std::string& table) const;

  /// Selectivity of an (unqualified) predicate against `table`, with the
  /// percentile shift applied. Honors overrides.
  double ScanSelectivity(const std::string& table,
                         const PredicatePtr& pred) const;

  /// Unshifted scan estimate with its derivation pedigree — the robust
  /// selector's error-band input. Honors overrides (an override is a
  /// zero-uncertainty point) and bind peeking.
  SelEstimate ScanEstimate(const std::string& table,
                           const PredicatePtr& pred) const;

  /// Selectivity of a predicate whose columns are qualified "table.column"
  /// (join residuals, post-join filters). And/Or/Not combine with the same
  /// rules as the single-table estimator; leaves dispatch to their table's
  /// statistics.
  double QualifiedSelectivity(const PredicatePtr& pred) const;

  /// Distinct count of `table.column` (>= 1).
  double DistinctValues(const std::string& table,
                        const std::string& column) const;

  /// Equi-join selectivity 1 / max(ndv(left), ndv(right)) with the
  /// percentile shift applied; keys qualified. Honors join overrides.
  double JoinSelectivity(const std::string& left_slot,
                         const std::string& right_slot) const;

  /// Unshifted join estimate with pedigree: the 1/max(ndv) rule carries one
  /// independence-style assumption (containment + uniformity); missing
  /// distinct-count statistics downgrade it to a guess. Symmetric in the
  /// two slots; an override is a zero-uncertainty point.
  SelEstimate JoinEstimate(const std::string& left_slot,
                           const std::string& right_slot) const;

  /// Forces the selectivity of *any* scan predicate on `table` (the plan
  /// diagram's axis knob).
  void SetScanSelectivityOverride(const std::string& table, double s) {
    scan_override_[table] = s;
  }
  /// Forces the selectivity of the join edge between two slots (the robust
  /// selector's perturbation knob). Symmetric: either slot order matches.
  void SetJoinSelectivityOverride(const std::string& left_slot,
                                  const std::string& right_slot, double s) {
    join_override_[JoinKey(left_slot, right_slot)] = s;
  }
  void ClearOverrides() {
    scan_override_.clear();
    join_override_.clear();
  }

  /// Bind peeking (Session 2.3 "late binding"): supply the current call's
  /// parameter values so that parameterized predicates are estimated with
  /// real literals while the produced plan keeps its parameter markers.
  void SetParamPeek(std::vector<int64_t> params) {
    peek_params_ = std::move(params);
  }
  bool has_peek() const { return !peek_params_.empty(); }
  int64_t PeekParam(int index) const {
    return peek_params_[static_cast<size_t>(index)];
  }

  const CardinalityOptions& options() const { return options_; }

  /// Applies the percentile shift to an estimate with pedigree `e`:
  /// value * exp(z(percentile) * sigma_per_term * sqrt(terms)) clamped to 1,
  /// terms = independence_terms + 2 * guessed_terms. A zero-term pedigree
  /// collapses the band to the point estimate.
  double Shift(const SelEstimate& e) const;

 private:
  static std::pair<std::string, std::string> JoinKey(const std::string& a,
                                                     const std::string& b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
  SelectivityEstimator MakeEstimator(const std::string& table) const;

  const StatsCatalog* stats_;
  CardinalityOptions options_;
  const std::map<std::string, const CorrelationInfo*>* correlations_;
  const FeedbackCache* feedback_;
  const StHistogramStore* st_store_ = nullptr;
  std::map<std::string, double> scan_override_;
  std::map<std::pair<std::string, std::string>, double> join_override_;
  std::vector<int64_t> peek_params_;
};

/// Splits a qualified slot "table.column" into its parts; returns false if
/// there is no dot.
bool SplitSlot(const std::string& slot, std::string* table,
               std::string* column);

}  // namespace rqp

#endif  // RQP_OPTIMIZER_CARDINALITY_H_
