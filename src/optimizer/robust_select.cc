#include "optimizer/robust_select.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/rng.h"

namespace rqp {

bool RobustSelectionEnabled(int enabled) {
  if (enabled >= 0) return enabled != 0;
  const char* env = std::getenv("RQP_ROBUST_PLAN");
  if (env == nullptr || *env == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

double BandSigma(const SelEstimate& e, double sigma_per_term) {
  const int terms = e.independence_terms + 2 * e.guessed_terms;
  if (terms <= 0) return 0.0;
  return sigma_per_term * std::sqrt(static_cast<double>(terms));
}

std::vector<std::vector<double>> MakePerturbationPoints(
    const std::vector<PerturbDimension>& dims,
    const RobustSelectionOptions& options) {
  const int samples = std::max(1, options.samples);
  std::vector<std::vector<double>> points;
  points.reserve(static_cast<size_t>(samples));
  Rng rng(options.seed);
  for (int s = 0; s < samples; ++s) {
    std::vector<double> p(dims.size());
    for (size_t d = 0; d < dims.size(); ++d) {
      // One draw per (sample, dimension) regardless of sigma keeps the
      // stream aligned when bands widen or collapse between queries.
      const double z = rng.Gaussian(0.0, 1.0);
      if (s == 0 || dims[d].sigma <= 0.0) {
        p[d] = dims[d].center;
      } else {
        p[d] = dims[d].center * std::exp(z * dims[d].sigma);
      }
      p[d] = std::clamp(p[d], options.min_selectivity, 1.0);
    }
    points.push_back(std::move(p));
  }
  return points;
}

RobustSelection SelectRobustPlan(const std::vector<PlanNodePtr>& candidates,
                                 const std::vector<PerturbDimension>& dims,
                                 const CardinalityModel& model,
                                 const CostParams& cost_params,
                                 const RobustSelectionOptions& options) {
  RobustSelection sel;
  const size_t n = candidates.size();
  sel.scores.resize(n);
  if (n == 0) return sel;
  for (const auto& d : dims) {
    if (d.sigma > 0.0) ++sel.dimensions;
  }

  const auto points = MakePerturbationPoints(dims, options);
  sel.samples = static_cast<int>(points.size());

  // Cost matrix: every candidate at every perturbation point, each point a
  // model copy with the point's selectivities pinned as overrides (scan
  // overrides bypass the percentile shift, so the surface is sampled in
  // true-selectivity space, not shifted space).
  std::vector<std::vector<double>> cost(
      n, std::vector<double>(points.size(), 0.0));
  for (size_t s = 0; s < points.size(); ++s) {
    CardinalityModel point_model = model;
    for (size_t d = 0; d < dims.size(); ++d) {
      if (dims[d].kind == PerturbDimension::Kind::kScan) {
        point_model.SetScanSelectivityOverride(dims[d].table, points[s][d]);
      } else {
        point_model.SetJoinSelectivityOverride(dims[d].left_slot,
                                               dims[d].right_slot,
                                               points[s][d]);
      }
    }
    PlanCoster coster(&point_model, cost_params);
    for (size_t i = 0; i < n; ++i) {
      PlanNodePtr clone = candidates[i]->Clone();
      coster.Cost(clone.get());
      cost[i][s] = clone->est_cost;
    }
  }

  for (size_t s = 0; s < points.size(); ++s) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) best = std::min(best, cost[i][s]);
    for (size_t i = 0; i < n; ++i) {
      const double pen = cost[i][s] - best;
      sel.scores[i].expected_penalty += pen;
      sel.scores[i].worst_penalty = std::max(sel.scores[i].worst_penalty, pen);
      sel.scores[i].worst_cost = std::max(sel.scores[i].worst_cost,
                                          cost[i][s]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    sel.scores[i].expected_penalty /= static_cast<double>(points.size());
    sel.scores[i].nominal_cost = cost[i][0];
  }

  // Worst-case cap: the minimax worst cost anchors the cap, so at least one
  // candidate always survives.
  if (options.worst_case_cap > 0.0) {
    double min_worst = std::numeric_limits<double>::infinity();
    for (const auto& sc : sel.scores) min_worst = std::min(min_worst,
                                                           sc.worst_cost);
    for (auto& sc : sel.scores) {
      sc.capped = sc.worst_cost > options.worst_case_cap * min_worst;
    }
  }

  auto score_of = [&](size_t i) {
    return sel.scores[i].expected_penalty +
           options.nominal_tradeoff * sel.scores[i].nominal_cost;
  };
  for (size_t i = 0; i < n; ++i) {
    if (sel.scores[i].capped) continue;
    if (sel.chosen < 0 ||
        score_of(i) < score_of(static_cast<size_t>(sel.chosen))) {
      sel.chosen = static_cast<int>(i);
    }
  }

  // Runner-up: the remaining candidate with the flattest worst case — the
  // plan the engine switches to when the winner's CHECK fires mid-query.
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<int>(i) == sel.chosen || sel.scores[i].capped) continue;
    if (sel.runner_up < 0 ||
        sel.scores[i].worst_penalty <
            sel.scores[static_cast<size_t>(sel.runner_up)].worst_penalty) {
      sel.runner_up = static_cast<int>(i);
    }
  }

  if (sel.chosen >= 0 && sel.runner_up >= 0) {
    const auto& win = sel.scores[static_cast<size_t>(sel.chosen)];
    sel.hedged =
        options.hedge_threshold <= 0.0 ||
        win.worst_penalty >
            options.hedge_threshold * std::max(win.nominal_cost, 1e-12);
  }
  return sel;
}

}  // namespace rqp
