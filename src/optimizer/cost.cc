#include "optimizer/cost.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rqp {

double PlanCoster::SortSpillCost(double pages) const {
  const double mem = static_cast<double>(std::max<int64_t>(1, params_.memory_pages));
  if (pages <= mem) return 0.0;
  double run_pages = mem;
  double cost = 0.0;
  while (run_pages < pages) {
    cost += pages * (params_.exec.spill_page_write + params_.exec.spill_page_read);
    run_pages *= params_.sort_merge_fanin;
  }
  return cost;
}

double PlanCoster::HashSpillCost(double build_pages, double probe_pages) const {
  const double mem = static_cast<double>(std::max<int64_t>(1, params_.memory_pages));
  if (build_pages <= mem) return 0.0;
  const double f = 1.0 - mem / build_pages;
  return f * (build_pages + probe_pages) *
         (params_.exec.spill_page_write + params_.exec.spill_page_read);
}

void PlanCoster::Cost(PlanNode* node) const {
  for (auto& c : node->children) Cost(c.get());
  const CostModel& cm = params_.exec;

  switch (node->op) {
    case PlanOp::kTableScan: {
      const double in_rows = card_->TableRows(node->table);
      double cost = PagesOf(in_rows) * cm.seq_page_read + in_rows * cm.row_cpu;
      double sel = 1.0;
      if (node->predicate != nullptr) {
        cost += in_rows * cm.row_cpu;  // predicate evaluation
        sel = card_->ScanSelectivity(node->table, node->predicate);
      }
      node->est_rows = in_rows * sel;
      node->est_cost = cost;
      break;
    }
    case PlanOp::kIndexScan: {
      const double in_rows = card_->TableRows(node->table);
      double range_sel;
      if (node->index_lo_param >= 0 || node->index_hi_param >= 0) {
        // Parameter-typed bounds: peeked literals when available,
        // otherwise the magic-number range selectivity.
        if (card_->has_peek()) {
          const int64_t lo = node->index_lo_param >= 0
                                 ? card_->PeekParam(node->index_lo_param)
                                 : node->index_lo;
          const int64_t hi = node->index_hi_param >= 0
                                 ? card_->PeekParam(node->index_hi_param)
                                 : node->index_hi;
          range_sel = card_->ScanSelectivity(
              node->table, MakeBetween(node->index_column, lo, hi));
        } else {
          range_sel =
              card_->options().estimator.default_range_selectivity;
        }
      } else {
        range_sel = card_->ScanSelectivity(
            node->table,
            MakeBetween(node->index_column, node->index_lo, node->index_hi));
      }
      const double matches = in_rows * range_sel;
      double cost = cm.index_descend +
                    PagesOf(matches) * cm.seq_page_read +  // leaf pages
                    matches * (cm.random_page_read + cm.row_cpu);
      double residual_sel = 1.0;
      if (node->predicate != nullptr) {
        cost += matches * cm.row_cpu;
        // The residual is estimated against the full table; conditioning on
        // the range is ignored (the usual independence simplification).
        residual_sel = card_->ScanSelectivity(node->table, node->predicate);
      }
      node->est_rows = matches * residual_sel;
      node->est_cost = cost;
      break;
    }
    case PlanOp::kMaterializedSource: {
      const double rows = static_cast<double>(node->materialized_rows);
      node->est_rows = rows;
      node->est_cost = PagesOf(rows) * cm.seq_page_read + rows * cm.row_cpu;
      break;
    }
    case PlanOp::kFilter: {
      assert(node->children.size() == 1);
      const PlanNode& child = *node->children[0];
      const double sel = card_->QualifiedSelectivity(node->predicate);
      node->est_rows = child.est_rows * sel;
      node->est_cost = child.est_cost + child.est_rows * cm.row_cpu;
      break;
    }
    case PlanOp::kHashJoin: {
      assert(node->children.size() == 2);
      const PlanNode& probe = *node->children[0];
      const PlanNode& build = *node->children[1];
      const double jsel =
          card_->JoinSelectivity(node->left_key, node->right_key);
      node->est_rows = probe.est_rows * build.est_rows * jsel;
      node->est_cost = probe.est_cost + build.est_cost +
                       (build.est_rows * cm.hash_build_factor +
                        probe.est_rows) * cm.hash_op +
                       node->est_rows * cm.row_cpu +
                       HashSpillCost(PagesOf(build.est_rows),
                                     PagesOf(probe.est_rows));
      break;
    }
    case PlanOp::kMergeJoin: {
      assert(node->children.size() == 2);
      const PlanNode& l = *node->children[0];
      const PlanNode& r = *node->children[1];
      const double jsel =
          card_->JoinSelectivity(node->left_key, node->right_key);
      node->est_rows = l.est_rows * r.est_rows * jsel;
      node->est_cost = l.est_cost + r.est_cost +
                       (l.est_rows + r.est_rows) * cm.compare_op +
                       node->est_rows * cm.row_cpu;
      break;
    }
    case PlanOp::kIndexNLJoin: {
      assert(node->children.size() == 1);
      const PlanNode& outer = *node->children[0];
      const double inner_rows = card_->TableRows(node->table);
      const double jsel = card_->JoinSelectivity(
          node->left_key, node->table + "." + node->index_column);
      node->est_rows = outer.est_rows * inner_rows * jsel;
      node->est_cost = outer.est_cost + outer.est_rows * cm.index_descend +
                       node->est_rows * (cm.random_page_read + cm.row_cpu);
      break;
    }
    case PlanOp::kNestedLoopsJoin: {
      assert(node->children.size() == 2);
      const PlanNode& l = *node->children[0];
      const PlanNode& r = *node->children[1];
      const double sel =
          node->predicate ? card_->QualifiedSelectivity(node->predicate) : 1.0;
      node->est_rows = l.est_rows * r.est_rows * sel;
      node->est_cost = l.est_cost + r.est_cost +
                       l.est_rows * r.est_rows * cm.row_cpu +
                       node->est_rows * cm.row_cpu;
      break;
    }
    case PlanOp::kGJoin: {
      assert(node->children.size() == 2);
      const PlanNode& l = *node->children[0];
      const PlanNode& r = *node->children[1];
      const double jsel =
          card_->JoinSelectivity(node->left_key, node->right_key);
      node->est_rows = l.est_rows * r.est_rows * jsel;
      // Priced as a hash join that always builds on the smaller input.
      const double build = std::min(l.est_rows, r.est_rows);
      node->est_cost = l.est_cost + r.est_cost +
                       (build * cm.hash_build_factor + l.est_rows +
                        r.est_rows) * cm.hash_op +
                       node->est_rows * cm.row_cpu +
                       HashSpillCost(PagesOf(build),
                                     PagesOf(std::max(l.est_rows, r.est_rows)));
      break;
    }
    case PlanOp::kMap: {
      assert(node->children.size() == 1);
      const PlanNode& child = *node->children[0];
      node->est_rows = child.est_rows;
      node->est_cost = child.est_cost +
                       child.est_rows *
                           static_cast<double>(node->derived.size()) *
                           cm.row_cpu;
      break;
    }
    case PlanOp::kSort: {
      assert(node->children.size() == 1);
      const PlanNode& child = *node->children[0];
      const double n = std::max(1.0, child.est_rows);
      node->est_rows = child.est_rows;
      node->est_cost = child.est_cost + n * std::log2(n + 1.0) * cm.compare_op +
                       SortSpillCost(PagesOf(n)) + n * cm.row_cpu;
      break;
    }
    case PlanOp::kHashAgg: {
      assert(node->children.size() == 1);
      const PlanNode& child = *node->children[0];
      double groups = 1.0;
      for (const auto& g : node->group_by) {
        std::string t, c;
        if (SplitSlot(g, &t, &c)) groups *= card_->DistinctValues(t, c);
      }
      node->est_rows = std::min(std::max(1.0, child.est_rows), groups);
      node->est_cost = child.est_cost + child.est_rows * cm.hash_op +
                       node->est_rows * cm.row_cpu;
      break;
    }
    case PlanOp::kCheck: {
      assert(node->children.size() == 1);
      const PlanNode& child = *node->children[0];
      node->est_rows = child.est_rows;
      // Materialize once, replay once.
      node->est_cost = child.est_cost +
                       PagesOf(child.est_rows) *
                           (cm.spill_page_write + cm.seq_page_read);
      break;
    }
  }
}

double ShuffleExchangeCost(const CostModel& cm, double rows, int num_shards) {
  if (num_shards <= 1 || rows <= 0) return 0.0;
  const double remote =
      rows * (num_shards - 1) / static_cast<double>(num_shards);
  const double pages =
      std::ceil(remote / static_cast<double>(kRowsPerPage));
  return remote * (cm.hash_op + cm.row_cpu) + pages * cm.exchange_page;
}

double BroadcastExchangeCost(const CostModel& cm, double rows,
                             int num_shards) {
  if (num_shards <= 1 || rows <= 0) return 0.0;
  const double copies = rows * num_shards;
  const double pages =
      std::ceil(copies / static_cast<double>(kRowsPerPage));
  return copies * cm.row_cpu + pages * cm.exchange_page;
}

}  // namespace rqp
