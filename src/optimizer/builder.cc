#include "optimizer/builder.h"

#include <algorithm>
#include <optional>

#include "exec/filter_ops.h"
#include "exec/join_ops.h"
#include "exec/parallel_ops.h"
#include "exec/scan_ops.h"
#include "exec/sort_agg_ops.h"

namespace rqp {
namespace {

PredicatePtr Bind(const PredicatePtr& p, const std::vector<int64_t>& params) {
  if (p == nullptr) return nullptr;
  if (!HasParams(p)) return p;
  return BindParams(p, params);
}

/// The plan shape GatherOp executes: an optional hash aggregation over a
/// right-deep hash-join chain whose probe spine bottoms out in a table scan
/// (children[0] is always the probe side). Anything else — index scans,
/// filters, checks, other join algorithms — keeps the serial lowering.
struct ParallelSegment {
  const PlanNode* agg = nullptr;
  std::vector<const PlanNode*> joins;  ///< bottom-up: joins[0] probes the scan
  const PlanNode* scan = nullptr;
};

bool MatchParallelSegment(const PlanNode& plan, ParallelSegment* seg) {
  const PlanNode* cur = &plan;
  if (cur->op == PlanOp::kHashAgg) {
    seg->agg = cur;
    cur = cur->children[0].get();
  }
  while (cur->op == PlanOp::kHashJoin) {
    seg->joins.push_back(cur);
    cur = cur->children[0].get();
  }
  if (cur->op != PlanOp::kTableScan) return false;
  seg->scan = cur;
  std::reverse(seg->joins.begin(), seg->joins.end());
  return true;
}

}  // namespace

StatusOr<OperatorPtr> BuildExecutable(const PlanNode& plan,
                                      const Catalog* catalog,
                                      const std::vector<int64_t>& params,
                                      const ParallelOptions* parallel) {
  auto build_child = [&](size_t i) -> StatusOr<OperatorPtr> {
    return BuildExecutable(*plan.children[i], catalog, params, parallel);
  };

  if (parallel != nullptr && parallel->num_threads > 1 &&
      parallel->pool != nullptr) {
    ParallelSegment seg;
    if (MatchParallelSegment(plan, &seg)) {
      auto table = catalog->GetTable(seg.scan->table);
      if (!table.ok()) return table.status();
      std::vector<GatherOp::JoinStage> stages;
      for (const PlanNode* j : seg.joins) {
        // Build sides are full subplans lowered recursively (they run
        // serially on the coordinator before the parallel probe phase).
        auto build = BuildExecutable(*j->children[1], catalog, params,
                                     parallel);
        if (!build.ok()) return build.status();
        GatherOp::JoinStage stage;
        stage.build_child = std::move(build.value());
        stage.probe_key = j->left_key;
        stage.build_key = j->right_key;
        stage.node_id = j->id;
        stages.push_back(std::move(stage));
      }
      std::optional<GatherOp::AggStage> agg;
      if (seg.agg != nullptr) {
        agg = GatherOp::AggStage{seg.agg->group_by, seg.agg->aggregates};
      }
      OperatorPtr op = std::make_unique<GatherOp>(
          table.value(), Bind(seg.scan->predicate, params), seg.scan->id,
          std::move(stages), std::move(agg), *parallel);
      op->set_plan_node_id(plan.id);
      return op;
    }
  }

  OperatorPtr op;
  switch (plan.op) {
    case PlanOp::kTableScan: {
      auto table = catalog->GetTable(plan.table);
      if (!table.ok()) return table.status();
      op = std::make_unique<TableScanOp>(table.value(),
                                         Bind(plan.predicate, params));
      break;
    }
    case PlanOp::kIndexScan: {
      auto table = catalog->GetTable(plan.table);
      if (!table.ok()) return table.status();
      const SortedIndex* index =
          catalog->FindIndex(plan.table, plan.index_column);
      if (index == nullptr) {
        return Status::NotFound("no index on " + plan.table + "." +
                                plan.index_column);
      }
      int64_t lo = plan.index_lo, hi = plan.index_hi;
      if (plan.index_lo_param >= 0) {
        if (static_cast<size_t>(plan.index_lo_param) >= params.size()) {
          return Status::InvalidArgument("missing index bound parameter");
        }
        lo = params[static_cast<size_t>(plan.index_lo_param)];
      }
      if (plan.index_hi_param >= 0) {
        if (static_cast<size_t>(plan.index_hi_param) >= params.size()) {
          return Status::InvalidArgument("missing index bound parameter");
        }
        hi = params[static_cast<size_t>(plan.index_hi_param)];
      }
      op = std::make_unique<IndexScanOp>(table.value(), index, lo, hi,
                                         Bind(plan.predicate, params));
      break;
    }
    case PlanOp::kMaterializedSource: {
      op = std::make_unique<VectorSourceOp>(plan.materialized,
                                            plan.materialized_slots);
      break;
    }
    case PlanOp::kFilter: {
      auto child = build_child(0);
      if (!child.ok()) return child.status();
      op = std::make_unique<FilterOp>(std::move(child.value()),
                                      Bind(plan.predicate, params));
      break;
    }
    case PlanOp::kHashJoin: {
      auto probe = build_child(0);
      if (!probe.ok()) return probe.status();
      auto build = build_child(1);
      if (!build.ok()) return build.status();
      op = std::make_unique<HashJoinOp>(std::move(probe.value()),
                                        std::move(build.value()),
                                        plan.left_key, plan.right_key);
      break;
    }
    case PlanOp::kMergeJoin: {
      auto left = build_child(0);
      if (!left.ok()) return left.status();
      auto right = build_child(1);
      if (!right.ok()) return right.status();
      op = std::make_unique<MergeJoinOp>(std::move(left.value()),
                                         std::move(right.value()),
                                         plan.left_key, plan.right_key);
      break;
    }
    case PlanOp::kIndexNLJoin: {
      auto outer = build_child(0);
      if (!outer.ok()) return outer.status();
      auto table = catalog->GetTable(plan.table);
      if (!table.ok()) return table.status();
      const SortedIndex* index =
          catalog->FindIndex(plan.table, plan.index_column);
      if (index == nullptr) {
        return Status::NotFound("no index on " + plan.table + "." +
                                plan.index_column);
      }
      op = std::make_unique<IndexNLJoinOp>(std::move(outer.value()),
                                           table.value(), index,
                                           plan.left_key);
      break;
    }
    case PlanOp::kNestedLoopsJoin: {
      auto left = build_child(0);
      if (!left.ok()) return left.status();
      auto right = build_child(1);
      if (!right.ok()) return right.status();
      op = std::make_unique<NestedLoopsJoinOp>(std::move(left.value()),
                                               std::move(right.value()),
                                               Bind(plan.predicate, params));
      break;
    }
    case PlanOp::kGJoin: {
      auto left = build_child(0);
      if (!left.ok()) return left.status();
      auto right = build_child(1);
      if (!right.ok()) return right.status();
      GJoinOp::Hints hints;
      if (!plan.table.empty()) {
        auto table = catalog->GetTable(plan.table);
        if (!table.ok()) return table.status();
        hints.right_table = table.value();
        hints.right_index = catalog->FindIndex(plan.table, plan.index_column);
      }
      // Sort children announce sortedness to enable the merge strategy.
      hints.left_sorted = plan.children[0]->op == PlanOp::kSort;
      hints.right_sorted = plan.children[1]->op == PlanOp::kSort;
      op = std::make_unique<GJoinOp>(std::move(left.value()),
                                     std::move(right.value()), plan.left_key,
                                     plan.right_key, hints);
      break;
    }
    case PlanOp::kMap: {
      auto child = build_child(0);
      if (!child.ok()) return child.status();
      op = std::make_unique<MapOp>(std::move(child.value()), plan.derived);
      break;
    }
    case PlanOp::kSort: {
      auto child = build_child(0);
      if (!child.ok()) return child.status();
      op = std::make_unique<SortOp>(std::move(child.value()), plan.sort_key);
      break;
    }
    case PlanOp::kHashAgg: {
      auto child = build_child(0);
      if (!child.ok()) return child.status();
      op = std::make_unique<HashAggOp>(std::move(child.value()),
                                       plan.group_by, plan.aggregates);
      break;
    }
    case PlanOp::kCheck: {
      auto child = build_child(0);
      if (!child.ok()) return child.status();
      op = std::make_unique<CheckOp>(std::move(child.value()),
                                     static_cast<int64_t>(plan.est_rows),
                                     plan.check_lo, plan.check_hi);
      break;
    }
  }
  op->set_plan_node_id(plan.id);
  return op;
}

}  // namespace rqp
