#include "optimizer/builder.h"

#include "exec/filter_ops.h"
#include "exec/join_ops.h"
#include "exec/scan_ops.h"
#include "exec/sort_agg_ops.h"

namespace rqp {
namespace {

PredicatePtr Bind(const PredicatePtr& p, const std::vector<int64_t>& params) {
  if (p == nullptr) return nullptr;
  if (!HasParams(p)) return p;
  return BindParams(p, params);
}

}  // namespace

StatusOr<OperatorPtr> BuildExecutable(const PlanNode& plan,
                                      const Catalog* catalog,
                                      const std::vector<int64_t>& params) {
  auto build_child = [&](size_t i) -> StatusOr<OperatorPtr> {
    return BuildExecutable(*plan.children[i], catalog, params);
  };

  OperatorPtr op;
  switch (plan.op) {
    case PlanOp::kTableScan: {
      auto table = catalog->GetTable(plan.table);
      if (!table.ok()) return table.status();
      op = std::make_unique<TableScanOp>(table.value(),
                                         Bind(plan.predicate, params));
      break;
    }
    case PlanOp::kIndexScan: {
      auto table = catalog->GetTable(plan.table);
      if (!table.ok()) return table.status();
      const SortedIndex* index =
          catalog->FindIndex(plan.table, plan.index_column);
      if (index == nullptr) {
        return Status::NotFound("no index on " + plan.table + "." +
                                plan.index_column);
      }
      int64_t lo = plan.index_lo, hi = plan.index_hi;
      if (plan.index_lo_param >= 0) {
        if (static_cast<size_t>(plan.index_lo_param) >= params.size()) {
          return Status::InvalidArgument("missing index bound parameter");
        }
        lo = params[static_cast<size_t>(plan.index_lo_param)];
      }
      if (plan.index_hi_param >= 0) {
        if (static_cast<size_t>(plan.index_hi_param) >= params.size()) {
          return Status::InvalidArgument("missing index bound parameter");
        }
        hi = params[static_cast<size_t>(plan.index_hi_param)];
      }
      op = std::make_unique<IndexScanOp>(table.value(), index, lo, hi,
                                         Bind(plan.predicate, params));
      break;
    }
    case PlanOp::kMaterializedSource: {
      op = std::make_unique<VectorSourceOp>(plan.materialized,
                                            plan.materialized_slots);
      break;
    }
    case PlanOp::kFilter: {
      auto child = build_child(0);
      if (!child.ok()) return child.status();
      op = std::make_unique<FilterOp>(std::move(child.value()),
                                      Bind(plan.predicate, params));
      break;
    }
    case PlanOp::kHashJoin: {
      auto probe = build_child(0);
      if (!probe.ok()) return probe.status();
      auto build = build_child(1);
      if (!build.ok()) return build.status();
      op = std::make_unique<HashJoinOp>(std::move(probe.value()),
                                        std::move(build.value()),
                                        plan.left_key, plan.right_key);
      break;
    }
    case PlanOp::kMergeJoin: {
      auto left = build_child(0);
      if (!left.ok()) return left.status();
      auto right = build_child(1);
      if (!right.ok()) return right.status();
      op = std::make_unique<MergeJoinOp>(std::move(left.value()),
                                         std::move(right.value()),
                                         plan.left_key, plan.right_key);
      break;
    }
    case PlanOp::kIndexNLJoin: {
      auto outer = build_child(0);
      if (!outer.ok()) return outer.status();
      auto table = catalog->GetTable(plan.table);
      if (!table.ok()) return table.status();
      const SortedIndex* index =
          catalog->FindIndex(plan.table, plan.index_column);
      if (index == nullptr) {
        return Status::NotFound("no index on " + plan.table + "." +
                                plan.index_column);
      }
      op = std::make_unique<IndexNLJoinOp>(std::move(outer.value()),
                                           table.value(), index,
                                           plan.left_key);
      break;
    }
    case PlanOp::kNestedLoopsJoin: {
      auto left = build_child(0);
      if (!left.ok()) return left.status();
      auto right = build_child(1);
      if (!right.ok()) return right.status();
      op = std::make_unique<NestedLoopsJoinOp>(std::move(left.value()),
                                               std::move(right.value()),
                                               Bind(plan.predicate, params));
      break;
    }
    case PlanOp::kGJoin: {
      auto left = build_child(0);
      if (!left.ok()) return left.status();
      auto right = build_child(1);
      if (!right.ok()) return right.status();
      GJoinOp::Hints hints;
      if (!plan.table.empty()) {
        auto table = catalog->GetTable(plan.table);
        if (!table.ok()) return table.status();
        hints.right_table = table.value();
        hints.right_index = catalog->FindIndex(plan.table, plan.index_column);
      }
      // Sort children announce sortedness to enable the merge strategy.
      hints.left_sorted = plan.children[0]->op == PlanOp::kSort;
      hints.right_sorted = plan.children[1]->op == PlanOp::kSort;
      op = std::make_unique<GJoinOp>(std::move(left.value()),
                                     std::move(right.value()), plan.left_key,
                                     plan.right_key, hints);
      break;
    }
    case PlanOp::kSort: {
      auto child = build_child(0);
      if (!child.ok()) return child.status();
      op = std::make_unique<SortOp>(std::move(child.value()), plan.sort_key);
      break;
    }
    case PlanOp::kHashAgg: {
      auto child = build_child(0);
      if (!child.ok()) return child.status();
      op = std::make_unique<HashAggOp>(std::move(child.value()),
                                       plan.group_by, plan.aggregates);
      break;
    }
    case PlanOp::kCheck: {
      auto child = build_child(0);
      if (!child.ok()) return child.status();
      op = std::make_unique<CheckOp>(std::move(child.value()),
                                     static_cast<int64_t>(plan.est_rows),
                                     plan.check_lo, plan.check_hi);
      break;
    }
  }
  op->set_plan_node_id(plan.id);
  return op;
}

}  // namespace rqp
