#ifndef RQP_OPTIMIZER_PLAN_H_
#define RQP_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/sort_agg_ops.h"
#include "expr/expr.h"
#include "expr/predicate.h"

namespace rqp {

/// Physical plan operators.
enum class PlanOp {
  kTableScan,
  kIndexScan,
  kMaterializedSource,  ///< re-optimization restart from a POP checkpoint
  kFilter,
  kHashJoin,     ///< right child is the build side
  kMergeJoin,    ///< children must be sort-producing
  kIndexNLJoin,  ///< left = outer, inner named by `table`
  kNestedLoopsJoin,
  kGJoin,
  kMap,  ///< derived columns through the expression VM
  kSort,
  kHashAgg,
  kCheck,  ///< POP checkpoint with a validity range
};

const char* PlanOpName(PlanOp op);

/// One node of a physical plan. A passive description: the executor builder
/// lowers it to operators, the PlanCoster prices it, EXPLAIN prints it.
struct PlanNode {
  PlanOp op = PlanOp::kTableScan;
  int id = -1;  ///< unique within a plan; keys est->actual matching
  std::vector<std::unique_ptr<PlanNode>> children;

  // Scans / IndexNLJoin inner.
  std::string table;
  PredicatePtr predicate;  ///< scan filter, join residual, or NLJ predicate
  // Index scans. When index_lo_param/index_hi_param are >= 0 the bounds
  // are run-time parameters resolved by the builder (late binding).
  std::string index_column;
  int64_t index_lo = 0, index_hi = 0;
  int index_lo_param = -1, index_hi_param = -1;
  // Joins (qualified slot names).
  std::string left_key, right_key;
  // Sort.
  std::string sort_key;
  // Map (derived columns; expression trees are immutable and shared).
  std::vector<DerivedColumn> derived;
  // Aggregation.
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;
  // Check (POP) validity range on the child's actual cardinality.
  int64_t check_lo = 0, check_hi = 0;
  // Materialized source (restart after re-optimization).
  std::shared_ptr<std::vector<RowBatch>> materialized;
  std::vector<std::string> materialized_slots;
  int64_t materialized_rows = 0;
  /// Base tables covered by a materialized source (so re-planning knows
  /// which joins are already done).
  std::vector<std::string> covered_tables;

  // Filled by the PlanCoster / optimizer.
  double est_rows = 0;
  double est_cost = 0;  ///< cumulative cost of the subtree

  PlanNode() = default;
  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  std::unique_ptr<PlanNode> Clone() const;

  /// Multi-line EXPLAIN rendering. With `with_estimates`, appends
  /// rows/cost annotations; without, the output is a *structural signature*
  /// (used to identify identical plans across plan-diagram points).
  std::string Explain(bool with_estimates = true) const;

  /// All base table names under this node (including covered_tables of
  /// materialized sources), sorted.
  std::vector<std::string> BaseTables() const;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Creates a node with the next id from `counter`.
PlanNodePtr NewPlanNode(PlanOp op, int* counter);

}  // namespace rqp

#endif  // RQP_OPTIMIZER_PLAN_H_
