#ifndef RQP_OPTIMIZER_COST_H_
#define RQP_OPTIMIZER_COST_H_

#include "exec/context.h"
#include "optimizer/cardinality.h"
#include "optimizer/plan.h"

namespace rqp {

/// Optimizer-side cost parameters. The per-operation constants mirror the
/// executor's CostModel so estimated and measured cost agree when the
/// cardinality estimates are right — which makes cardinality error the
/// *only* source of plan mistakes, exactly the experimental isolation the
/// paper's "three levels to measure" discussion calls for.
struct CostParams {
  CostModel exec;
  int64_t memory_pages = 1 << 20;  ///< grant assumed for spill estimation
  int sort_merge_fanin = 8;
};

/// Prices a physical plan bottom-up, filling est_rows/est_cost on every
/// node. A pure function of (plan structure, cardinality model, params) —
/// reused by the DP enumeration, the plan-diagram recoster, validity-range
/// probing, and the Metric3 ideal-plan search.
class PlanCoster {
 public:
  PlanCoster(const CardinalityModel* card, CostParams params)
      : card_(card), params_(params) {}

  /// Computes est_rows and cumulative est_cost for `node` and its subtree.
  void Cost(PlanNode* node) const;

  const CostParams& params() const { return params_; }

 private:
  double PagesOf(double rows) const {
    return std::max(1.0, std::ceil(rows / static_cast<double>(kRowsPerPage)));
  }
  /// External-sort spill cost for `pages` of input.
  double SortSpillCost(double pages) const;
  /// Grace-hash spill cost when the build side exceeds memory.
  double HashSpillCost(double build_pages, double probe_pages) const;

  const CardinalityModel* card_;
  CostParams params_;
};

/// Estimated clock cost of hash-shuffling `rows` across `num_shards` shards
/// (PR 9 exchange costing, DESIGN.md §14). On average (shards-1)/shards of
/// the rows leave their sender: each pays a hash route + a row copy, and the
/// remote volume pays exchange_page per page. The same formula the sharded
/// engine's channel charges at run time, so the co-location pass's
/// shuffle-vs-broadcast decision is measured in real clock units.
double ShuffleExchangeCost(const CostModel& cm, double rows, int num_shards);

/// Estimated clock cost of replicating `rows` to every one of `num_shards`
/// shards: every copy (the sender's own included — the broadcast path stages
/// uniformly) pays a row copy plus paged transfer, no hash.
double BroadcastExchangeCost(const CostModel& cm, double rows,
                             int num_shards);

}  // namespace rqp

#endif  // RQP_OPTIMIZER_COST_H_
