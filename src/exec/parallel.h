#ifndef RQP_EXEC_PARALLEL_H_
#define RQP_EXEC_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/context.h"
#include "exec/thread_pool.h"

namespace rqp {

/// Degree-of-parallelism configuration threaded from EngineOptions into the
/// executable builder. num_threads == 1 (the default) builds the classic
/// single-threaded tree — byte-identical to pre-parallel behavior.
struct ParallelOptions {
  int num_threads = 1;
  int64_t morsel_rows = 4096;  ///< rows per morsel (rounded to page size)
  ThreadPool* pool = nullptr;  ///< required when num_threads > 1
};

/// A fixed row-range work unit of a parallel table scan. Morsel ids are
/// dense and ordered by table position, which is what lets the gather
/// operator reassemble worker output in a deterministic (morsel-id) order
/// no matter which worker processed which morsel.
struct Morsel {
  int64_t id = 0;
  int64_t begin = 0;  ///< first row (inclusive)
  int64_t end = 0;    ///< last row (exclusive)
};

/// Atomic work-stealing cursor handing out morsels of `morsel_rows` rows
/// over [0, total_rows). Rounds morsel_rows up to a multiple of kRowsPerPage
/// so per-morsel page charges sum exactly to the serial scan's page count.
class MorselCursor {
 public:
  MorselCursor(int64_t total_rows, int64_t morsel_rows);

  /// Claims the next morsel; false once the table is exhausted.
  bool Claim(Morsel* m);

  int64_t num_morsels() const { return num_morsels_; }
  int64_t morsel_rows() const { return morsel_rows_; }

 private:
  int64_t total_rows_;
  int64_t morsel_rows_;
  int64_t num_morsels_;
  std::atomic<int64_t> next_{0};
};

/// Deterministic greedy list schedule: assigns `costs` (indexed by morsel
/// id, in id order) to the least-loaded of `workers` (lowest worker id
/// breaks ties) and returns the makespan. This replaces wall-clock speedup
/// measurement — on the simulated cost clock, a parallel phase "takes" its
/// makespan while charging its total work, so scaling tables are exactly
/// reproducible on any host, including single-core CI.
double ScheduleMakespan(const std::vector<double>& costs, int workers);

/// A worker's thread-local charge accumulator (the relaxed-contention
/// batching layer): mirrors the ExecContext Charge* methods into a local
/// ExecCounters, and flushes the delta into the shared context under one
/// lock per morsel instead of one per charge. Fault I/O multipliers are
/// evaluated at the phase-start clock so every morsel's cost is independent
/// of worker timing.
class WorkerCharge {
 public:
  WorkerCharge(ExecContext* ctx, double phase_start_cost)
      : ctx_(ctx), phase_start_(phase_start_cost) {}

  void ChargeSeqPages(int64_t pages, const std::string& table) {
    local_.pages_read += pages;
    local_.cost_units += ctx_->cost_model().seq_page_read * pages *
                         ctx_->IoMultiplierAt(table, phase_start_, pages);
  }
  void ChargeRowCpu(int64_t rows) {
    local_.rows_processed += rows;
    local_.cost_units += ctx_->cost_model().row_cpu * rows;
  }
  void ChargeHashOps(int64_t ops) {
    local_.hash_ops += ops;
    local_.cost_units += ctx_->cost_model().hash_op * ops;
  }
  void ChargePredicateEvals(int64_t evals) {
    local_.predicate_evals += evals;
    local_.cost_units += ctx_->cost_model().row_cpu * evals;
  }
  /// Raw clock charge (fault-retry backoff).
  void AddCost(double units) { local_.cost_units += units; }
  void CountRevocation() { ++local_.memory_revocations; }

  double cost() const { return local_.cost_units; }

  /// Merges the accumulated delta into the shared context (one lock
  /// acquisition; applies scheduled events and the budget check) and resets
  /// the local accumulator.
  void Flush() {
    ctx_->MergeWorkerCounters(local_);
    local_ = ExecCounters{};
  }

 private:
  ExecContext* ctx_;
  double phase_start_;
  ExecCounters local_;
};

}  // namespace rqp

#endif  // RQP_EXEC_PARALLEL_H_
