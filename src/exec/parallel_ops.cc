#include "exec/parallel_ops.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/scan_ops.h"

namespace rqp {

namespace {

int FindSlotIdx(const std::vector<std::string>& slots,
                const std::string& name) {
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

GatherOp::GatherOp(const Table* table, PredicatePtr filter, int scan_node_id,
                   std::vector<JoinStage> stages, std::optional<AggStage> agg,
                   ParallelOptions opts)
    : table_(table),
      filter_(std::move(filter)),
      scan_node_id_(scan_node_id),
      stages_(std::move(stages)),
      agg_(std::move(agg)),
      opts_(opts) {
  // Provisional pre-Open slot layout: parents (HashAggOp, MapOp) resolve
  // their inputs against output_slots() before Open runs, the same contract
  // every serial operator honors. Open recomputes and validates.
  std::vector<size_t> cols;
  (void)ResolveProjection(*table_, {}, &cols, &pipeline_slots_);
  for (const JoinStage& s : stages_) {
    const auto& bs = s.build_child->output_slots();
    pipeline_slots_.insert(pipeline_slots_.end(), bs.begin(), bs.end());
  }
  if (agg_.has_value()) {
    for (const auto& g : agg_->group_slots) output_slots_.push_back(g);
    for (const auto& a : agg_->aggregates) {
      output_slots_.push_back(a.output_name);
    }
  } else {
    output_slots_ = pipeline_slots_;
  }
}

GatherOp::~GatherOp() {
  ReleaseAllMemory();
  if (registered_ && broker_ != nullptr) broker_->Unregister(this);
}

Status GatherOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  broker_ = ctx->memory();
  ResetCount();
  delegate_.reset();
  stage_state_.clear();
  pipeline_slots_.clear();
  output_slots_.clear();
  compiled_.reset();
  merged_.clear();
  morsel_out_.clear();
  worker_groups_.clear();
  worker_pages_.clear();
  ledger_.clear();
  scan_produced_.store(0, std::memory_order_relaxed);
  stage_produced_ = std::make_unique<std::atomic<int64_t>[]>(stages_.size());
  first_error_ = Status::OK();
  emit_morsel_ = 0;
  emit_row_ = 0;
  emitting_groups_ = false;
  actuals_published_ = false;
  if (!registered_) {
    broker_->Register(this);
    registered_ = true;
  }

  // The parallel scan emits every column of the driving table, qualified —
  // the same layout a projection-free TableScanOp produces.
  std::vector<size_t> cols;
  RQP_RETURN_IF_ERROR(ResolveProjection(*table_, {}, &cols, &pipeline_slots_));
  if (filter_ != nullptr) {
    std::vector<std::string> all;
    for (size_t c = 0; c < table_->schema().num_columns(); ++c) {
      all.push_back(table_->schema().column(c).name);
    }
    auto compiled = CompiledPredicate::Compile(filter_, all);
    if (!compiled.ok()) return compiled.status();
    compiled_ = std::move(compiled.value());
    program_.reset();
    if (ctx->vectorized()) {
      // Unflattenable predicates fall back to the scalar per-row loop.
      auto program = PredicateProgram::Compile(filter_, all);
      if (program.ok()) program_ = std::move(program.value());
    }
  }

  RQP_RETURN_IF_ERROR(MaterializeBuilds(ctx));
  if (agg_.has_value()) {
    RQP_RETURN_IF_ERROR(ResolveAgg());
  } else {
    output_slots_ = pipeline_slots_;
  }

  // Residency decision: the parallel probe needs every build side resident
  // at once (the tables are shared read-only across workers and cannot be
  // shed mid-phase). Ask for it in one grant; a shortfall or a broker
  // already over-committed by a mid-query capacity drop means memory is the
  // constraint, not CPU — degrade to the serial spilling tree, which
  // completes at a 1-page grant with byte-identical output.
  int64_t needed = 0;
  for (const StageState& ss : stage_state_) {
    int64_t rows = 0;
    for (const RowBatch& b : *ss.build_batches) {
      rows += static_cast<int64_t>(b.num_rows());
    }
    needed += (rows + kRowsPerPage - 1) / kRowsPerPage;
  }
  if (needed > 0) {
    const int64_t grant = broker_->Grant(needed);
    if (grant < needed || broker_->overcommitted()) {
      broker_->Release(grant);
      return BuildSerialFallback(ctx);
    }
    build_charged_pages_ = grant;
  }

  RQP_RETURN_IF_ERROR(BuildHashTables());
  return RunParallelPhase(ctx);
}

Status GatherOp::MaterializeBuilds(ExecContext* ctx) {
  for (JoinStage& spec : stages_) {
    StageState ss;
    ss.in_cols = pipeline_slots_.size();
    ss.build_batches = std::make_shared<std::vector<RowBatch>>();
    auto drained =
        DrainOperator(spec.build_child.get(), ctx, ss.build_batches.get());
    if (!drained.ok()) return drained.status();
    ss.build_slots = spec.build_child->output_slots();

    const int probe_idx = FindSlotIdx(pipeline_slots_, spec.probe_key);
    if (probe_idx < 0) {
      return Status::InvalidArgument("probe key slot not found: " +
                                     spec.probe_key);
    }
    const int build_idx = FindSlotIdx(ss.build_slots, spec.build_key);
    if (build_idx < 0) {
      return Status::InvalidArgument("build key slot not found: " +
                                     spec.build_key);
    }
    ss.probe_key_idx = static_cast<size_t>(probe_idx);
    ss.build_key_idx = static_cast<size_t>(build_idx);
    ss.out_cols = ss.in_cols + ss.build_slots.size();
    pipeline_slots_.insert(pipeline_slots_.end(), ss.build_slots.begin(),
                           ss.build_slots.end());
    stage_state_.push_back(std::move(ss));
  }
  return Status::OK();
}

Status GatherOp::BuildHashTables() {
  for (StageState& ss : stage_state_) {
    ss.build_rows.num_cols = ss.build_slots.size();
    int64_t rows = 0;
    for (const RowBatch& b : *ss.build_batches) {
      for (size_t r = 0; r < b.num_rows(); ++r) {
        const int64_t* row = b.row(r);
        const auto idx = static_cast<uint32_t>(ss.build_rows.num_rows());
        ss.build_rows.Append(row);
        ss.table[row[ss.build_key_idx]].push_back(idx);
      }
      rows += static_cast<int64_t>(b.num_rows());
    }
    // Same accounting as HashJoinOp: one hash op per absorbed row plus the
    // build factor for table insertion.
    ctx_->ChargeHashOps(rows);
    ctx_->ChargeHashOps(static_cast<int64_t>(
        static_cast<double>(rows) * ctx_->cost_model().hash_build_factor));
  }
  return Status::OK();
}

Status GatherOp::BuildSerialFallback(ExecContext* ctx) {
  // Reconstruct the exact tree the builder produces at DOP 1, replaying the
  // already-materialized build rows, so output bytes and spill behavior are
  // the serial operators' own.
  OperatorPtr cur = std::make_unique<TableScanOp>(table_, filter_);
  cur->set_plan_node_id(scan_node_id_);
  for (size_t i = 0; i < stages_.size(); ++i) {
    auto build = std::make_unique<VectorSourceOp>(
        stage_state_[i].build_batches, stage_state_[i].build_slots);
    auto join =
        std::make_unique<HashJoinOp>(std::move(cur), std::move(build),
                                     stages_[i].probe_key, stages_[i].build_key);
    join->set_plan_node_id(stages_[i].node_id);
    cur = std::move(join);
  }
  if (agg_.has_value()) {
    auto aggop = std::make_unique<HashAggOp>(std::move(cur), agg_->group_slots,
                                             agg_->aggregates);
    aggop->set_plan_node_id(plan_node_id());
    cur = std::move(aggop);
  }
  delegate_ = std::move(cur);
  return delegate_->Open(ctx);
}

Status GatherOp::ResolveAgg() {
  group_idx_.clear();
  agg_idx_.clear();
  for (const auto& g : agg_->group_slots) {
    const int i = FindSlotIdx(pipeline_slots_, g);
    if (i < 0) return Status::InvalidArgument("group slot not found: " + g);
    group_idx_.push_back(static_cast<size_t>(i));
    output_slots_.push_back(g);
  }
  for (const auto& a : agg_->aggregates) {
    if (a.fn == AggFn::kCount) {
      agg_idx_.push_back(0);  // unused
    } else {
      const int i = FindSlotIdx(pipeline_slots_, a.slot);
      if (i < 0) {
        return Status::InvalidArgument("agg slot not found: " + a.slot);
      }
      agg_idx_.push_back(static_cast<size_t>(i));
    }
    output_slots_.push_back(a.output_name);
  }
  return Status::OK();
}

Status GatherOp::RunParallelPhase(ExecContext* ctx) {
  phase_start_cost_ = ctx->cost();
  cursor_ =
      std::make_unique<MorselCursor>(table_->num_rows(), opts_.morsel_rows);
  const int64_t num_morsels = cursor_->num_morsels();
  const int dop = std::max(1, opts_.num_threads);
  ledger_.assign(static_cast<size_t>(num_morsels), 0.0);
  if (agg_.has_value()) {
    worker_groups_.assign(static_cast<size_t>(dop), GroupMap{});
    worker_pages_.assign(static_cast<size_t>(dop), 0);
  } else {
    morsel_out_.resize(static_cast<size_t>(num_morsels));
    for (RowBuffer& rb : morsel_out_) rb.num_cols = pipeline_slots_.size();
  }

  if (num_morsels > 0) {
    if (opts_.pool != nullptr && dop > 1) {
      opts_.pool->RunOnWorkers(dop, [this](int w) { WorkerLoop(w); });
    } else {
      WorkerLoop(0);
    }
  }

  {
    std::lock_guard<std::mutex> lock(error_mu_);
    RQP_RETURN_IF_ERROR(first_error_);
  }
  RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());

  double total = 0;
  for (const double c : ledger_) total += c;
  const double makespan = ScheduleMakespan(ledger_, dop);
  ctx->RecordParallelPhase(num_morsels, total - makespan);

  if (agg_.has_value()) {
    // Fold the workers' partial maps (and anything revocation already shed)
    // into the merged map. The aggregate functions are commutative and
    // associative in exact int64 arithmetic, so merge order cannot change
    // the result; worker-id order keeps it deterministic anyway. The merge
    // itself is free on the cost clock: it is O(groups × DOP) bookkeeping
    // next to the probe work, and charging it would make total work
    // DOP-dependent, muddying the scaling tables.
    for (int w = 0; w < dop; ++w) {
      MergeIntoShared(worker_groups_[static_cast<size_t>(w)]);
      worker_groups_[static_cast<size_t>(w)].clear();
      int64_t& pages = worker_pages_[static_cast<size_t>(w)];
      if (pages > 0) {
        broker_->Release(pages);
        pages = 0;
      }
    }
    if (group_idx_.empty() && merged_.empty()) {
      // Scalar aggregate over zero rows still yields one row.
      auto [it, inserted] = merged_.try_emplace(std::vector<int64_t>{});
      if (inserted) InitAggAccumulators(agg_->aggregates, &it->second);
    }
    // Residency for the merged map, in completion mode: keep granting (the
    // broker's 1-page progress minimum makes this terminate) even if it
    // over-commits — the phase is done and emission only shrinks state.
    const int64_t needed_pages =
        (static_cast<int64_t>(merged_.size()) + kRowsPerPage - 1) /
        kRowsPerPage;
    while (merged_charged_pages_ < needed_pages) {
      merged_charged_pages_ +=
          broker_->Grant(needed_pages - merged_charged_pages_);
    }
    emit_it_ = merged_.begin();
    emitting_groups_ = true;
  }
  return Status::OK();
}

void GatherOp::WorkerLoop(int worker_id) {
  WorkerCharge charge(ctx_, phase_start_cost_);
  GroupMap* local =
      agg_.has_value() ? &worker_groups_[static_cast<size_t>(worker_id)]
                       : nullptr;
  std::vector<int64_t> row(pipeline_slots_.size());
  std::vector<int64_t> key(group_idx_.size());
  std::vector<int64_t> stage_counts(stage_state_.size(), 0);
  std::vector<const int64_t*> col_ptrs(table_->schema().num_columns());
  SelectionVector sel;
  Morsel m;
  while (!ctx_->cancelled() && cursor_->Claim(&m)) {
    const Status s = ProcessMorsel(m, worker_id, &charge, local, &row, &key,
                                   &stage_counts, &col_ptrs, &sel);
    ledger_[static_cast<size_t>(m.id)] = charge.cost();
    charge.Flush();
    if (!s.ok()) {
      {
        std::lock_guard<std::mutex> lock(error_mu_);
        if (first_error_.ok()) first_error_ = s;
      }
      ctx_->CancelParallel();
      break;
    }
    // Report produced totals to the node fuses at the flush boundary: the
    // trip lags production by at most one morsel per worker — the same
    // batching tolerance as the serial per-batch check.
    if (scan_node_id_ >= 0) {
      ctx_->ObserveProducedParallel(
          scan_node_id_, scan_produced_.load(std::memory_order_relaxed));
    }
    for (size_t i = 0; i < stage_state_.size(); ++i) {
      if (stage_counts[i] == 0) continue;
      const int64_t total =
          stage_produced_[i].fetch_add(stage_counts[i],
                                       std::memory_order_relaxed) +
          stage_counts[i];
      stage_counts[i] = 0;
      if (stages_[i].node_id >= 0) {
        ctx_->ObserveProducedParallel(stages_[i].node_id, total);
      }
    }
    if (local != nullptr) {
      EnsureLocalCapacity(worker_id, *local, &charge);
      // Morsel-boundary revocation poll: a mid-query capacity drop is
      // honored by shedding this worker's partial-aggregate map into the
      // shared merged map and releasing its pages.
      if (!local->empty() && broker_->overcommitted()) {
        ShedLocalGroups(worker_id, local, &charge);
      }
    }
  }
  charge.Flush();
}

Status GatherOp::ProcessMorsel(const Morsel& m, int /*worker_id*/,
                               WorkerCharge* charge, GroupMap* local_groups,
                               std::vector<int64_t>* row_storage,
                               std::vector<int64_t>* key_storage,
                               std::vector<int64_t>* stage_counts,
                               std::vector<const int64_t*>* col_ptrs,
                               SelectionVector* sel) {
  // Deterministic per-morsel fault point: the failure draw is keyed off the
  // morsel id, the fault window off the phase-start clock — identical at
  // every DOP and on every replay.
  double backoff = 0;
  const Status fault = ctx_->MaybeInjectMorselReadFault(
      table_->name(), phase_start_cost_, m.id, &backoff);
  if (backoff > 0) charge->AddCost(backoff);
  RQP_RETURN_IF_ERROR(fault);

  const int64_t rows = m.end - m.begin;
  // Morsels are whole pages (MorselCursor rounds up), so per-morsel page
  // charges sum exactly to the serial scan's total.
  charge->ChargeSeqPages((rows + kRowsPerPage - 1) / kRowsPerPage,
                         table_->name());
  charge->ChargeRowCpu(rows);

  std::vector<int64_t>& row = *row_storage;
  const size_t scan_cols = table_->schema().num_columns();
  RowBuffer* out =
      agg_.has_value() ? nullptr : &morsel_out_[static_cast<size_t>(m.id)];
  int64_t scan_count = 0;

  // Expands the probe chain depth-first. Stage widths nest, so one scratch
  // row serves every depth: [0, in_cols) is fixed by the caller and the
  // build columns of stage d land at [in_cols, out_cols).
  auto expand = [&](auto&& self, size_t depth) -> void {
    if (depth == stage_state_.size()) {
      if (local_groups != nullptr) {
        std::vector<int64_t>& key = *key_storage;
        for (size_t g = 0; g < group_idx_.size(); ++g) {
          key[g] = row[group_idx_[g]];
        }
        charge->ChargeHashOps(1);
        auto [it, inserted] = local_groups->try_emplace(key);
        if (inserted) InitAggAccumulators(agg_->aggregates, &it->second);
        MergeAggInputRow(agg_->aggregates, agg_idx_, row.data(), &it->second);
      } else {
        out->Append(row.data());
      }
      return;
    }
    StageState& ss = stage_state_[depth];
    charge->ChargeHashOps(1);
    const auto it = ss.table.find(row[ss.probe_key_idx]);
    if (it == ss.table.end()) return;
    for (const uint32_t idx : it->second) {
      const int64_t* b = ss.build_rows.row(idx);
      std::copy(b, b + ss.build_slots.size(),
                row.begin() + static_cast<long>(ss.in_cols));
      ++(*stage_counts)[depth];
      self(self, depth + 1);
    }
  };

  if (program_) {
    // Vectorized filter: evals are charged per morsel (the worker's local
    // counters flush at the morsel boundary either way, so the clock is
    // exactly the scalar path's) and the selection is built straight over
    // the table's columns — only survivors get transposed into the
    // pipeline row.
    charge->ChargePredicateEvals(rows);
    std::vector<const int64_t*>& cols = *col_ptrs;
    for (size_t c = 0; c < scan_cols; ++c) {
      cols[c] = table_->column(c).data() + m.begin;
    }
    program_->BuildSelection(cols.data(), /*stride=*/1,
                             static_cast<size_t>(rows), sel);
    for (const uint32_t s : *sel) {
      const int64_t r = m.begin + s;
      for (size_t c = 0; c < scan_cols; ++c) row[c] = table_->Value(c, r);
      ++scan_count;
      expand(expand, 0);
    }
  } else {
    for (int64_t r = m.begin; r < m.end; ++r) {
      for (size_t c = 0; c < scan_cols; ++c) row[c] = table_->Value(c, r);
      if (compiled_) {
        charge->ChargePredicateEvals(1);
        if (!compiled_->Eval(row.data())) continue;
      }
      ++scan_count;
      expand(expand, 0);
    }
  }
  scan_produced_.fetch_add(scan_count, std::memory_order_relaxed);
  return Status::OK();
}

void GatherOp::EnsureLocalCapacity(int worker_id, const GroupMap& local,
                                   WorkerCharge* /*charge*/) {
  const int64_t needed =
      (static_cast<int64_t>(local.size()) + kRowsPerPage - 1) / kRowsPerPage;
  int64_t& pages = worker_pages_[static_cast<size_t>(worker_id)];
  // Grants may force over-commit (Grant never returns less than 1); the
  // shed branch at the next morsel boundary resolves it.
  while (pages < needed) pages += broker_->Grant(needed - pages);
}

void GatherOp::ShedLocalGroups(int worker_id, GroupMap* local,
                               WorkerCharge* charge) {
  MergeIntoShared(*local);
  local->clear();
  int64_t& pages = worker_pages_[static_cast<size_t>(worker_id)];
  if (pages > 0) {
    broker_->Release(pages);
    pages = 0;
  }
  charge->CountRevocation();
}

void GatherOp::MergeIntoShared(const GroupMap& local) {
  std::lock_guard<std::mutex> lock(merged_mu_);
  for (const auto& [key, accs] : local) {
    auto [it, inserted] = merged_.try_emplace(key);
    if (inserted) InitAggAccumulators(agg_->aggregates, &it->second);
    MergeAggPartial(agg_->aggregates, accs.data(), &it->second);
  }
}

Status GatherOp::Next(RowBatch* out) {
  if (delegate_ != nullptr) return delegate_->Next(out);
  out->Reset(output_slots_.size());
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  if (emitting_groups_) {
    std::vector<int64_t> row(output_slots_.size());
    while (emit_it_ != merged_.end() && out->capacity_remaining() > 0) {
      const auto& [key, accs] = *emit_it_;
      std::copy(key.begin(), key.end(), row.begin());
      std::copy(accs.begin(), accs.end(),
                row.begin() + static_cast<long>(key.size()));
      out->AppendRow(row);
      ++emit_it_;
    }
    ctx_->ChargeRowCpu(static_cast<int64_t>(out->num_rows()));
  } else {
    // Morsel-id order == table order: byte-identical to the serial scan's
    // row stream regardless of which worker ran which morsel.
    while (emit_morsel_ < morsel_out_.size() &&
           out->capacity_remaining() > 0) {
      const RowBuffer& rb = morsel_out_[emit_morsel_];
      if (emit_row_ >= rb.num_rows()) {
        ++emit_morsel_;
        emit_row_ = 0;
        continue;
      }
      out->AppendRow(rb.row(emit_row_++));
    }
  }
  const bool eof = out->empty();
  if (eof && !actuals_published_) PublishActuals();
  CountProduced(ctx_, *out, eof);
  return Status::OK();
}

void GatherOp::PublishActuals() {
  actuals_published_ = true;
  auto& actuals = ctx_->actual_cardinalities();
  if (scan_node_id_ >= 0 && scan_node_id_ != plan_node_id()) {
    actuals[scan_node_id_] = scan_produced_.load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < stages_.size(); ++i) {
    const int id = stages_[i].node_id;
    if (id >= 0 && id != plan_node_id()) {
      actuals[id] = stage_produced_[i].load(std::memory_order_relaxed);
    }
  }
}

void GatherOp::Close() {
  if (delegate_ != nullptr) delegate_->Close();
  ReleaseAllMemory();
  if (registered_ && broker_ != nullptr) {
    broker_->Unregister(this);
    registered_ = false;
  }
  broker_ = nullptr;  // the broker may not outlive this operator
}

void GatherOp::ReleaseAllMemory() {
  if (broker_ == nullptr) return;
  if (build_charged_pages_ > 0) {
    broker_->Release(build_charged_pages_);
    build_charged_pages_ = 0;
  }
  if (merged_charged_pages_ > 0) {
    broker_->Release(merged_charged_pages_);
    merged_charged_pages_ = 0;
  }
  for (int64_t& pages : worker_pages_) {
    if (pages > 0) {
      broker_->Release(pages);
      pages = 0;
    }
  }
}

}  // namespace rqp
