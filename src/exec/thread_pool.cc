#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace rqp {
namespace {

/// Set while this thread runs a phase callback (worker 0 = the RunOnWorkers
/// caller, or a background worker). Re-entry cannot be made to work lazily:
/// the run mutex is held for the whole outer phase, so an inner RunOnWorkers
/// from any participant would wait on itself forever. Failing loudly at the
/// call site beats a silent hang.
thread_local bool tls_in_phase = false;

struct PhaseScope {
  PhaseScope() { tls_in_phase = true; }
  ~PhaseScope() { tls_in_phase = false; }
};

}  // namespace

bool ThreadPool::InParallelPhase() { return tls_in_phase; }

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  threads_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::RunOnWorkers(int n, const std::function<void(int)>& fn) {
  if (tls_in_phase) {
    std::fprintf(stderr,
                 "ThreadPool::RunOnWorkers re-entered from inside a parallel "
                 "phase; this would self-deadlock on the phase mutex\n");
    std::abort();
  }
  n = std::clamp(n, 1, num_threads_);
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_workers_ = n;
    pending_ = n - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  {
    PhaseScope in_phase;
    fn(0);  // the caller is worker 0
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerMain(int background_id) {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      if (background_id < job_workers_) job = job_;
    }
    if (job != nullptr) {
      {
        PhaseScope in_phase;
        (*job)(background_id);
      }
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace rqp
