#ifndef RQP_EXEC_SHARED_SCAN_H_
#define RQP_EXEC_SHARED_SCAN_H_

#include <optional>
#include <vector>

#include "exec/context.h"
#include "expr/predicate.h"
#include "storage/table.h"

namespace rqp {

/// Shared (cooperative) table scan — §3.1 "shared & coordinated scans" and
/// the QPipe / Crescando entries of the reading list: any number of
/// concurrent single-table queries attach to one scan cursor; the table is
/// read once per pass and every attached query's predicate is evaluated
/// against each row. The sequential I/O is paid once instead of once per
/// query, which makes per-query response time nearly independent of
/// concurrency — Crescando's "predictable performance for unpredictable
/// workloads".
///
/// This implementation serves COUNT(*)-style aggregation queries (the
/// experiments' workhorse); each attached query gets its predicate's
/// matching-row count and, optionally, the matching row ids.
class SharedScan {
 public:
  explicit SharedScan(const Table* table) : table_(table) {}

  /// Attaches a count query. Returns the query's id within this scan.
  /// `collect_rows` additionally materializes matching row ids.
  StatusOr<int> Attach(PredicatePtr predicate, bool collect_rows = false);

  /// Runs one pass over the table, answering every attached query.
  /// Charges `ctx` one sequential scan plus one predicate evaluation per
  /// (row, query) pair.
  Status Execute(ExecContext* ctx);

  int num_attached() const { return static_cast<int>(queries_.size()); }
  /// Matching-row count of query `id` (valid after Execute).
  int64_t count(int id) const { return queries_[static_cast<size_t>(id)].count; }
  const std::vector<int64_t>& row_ids(int id) const {
    return queries_[static_cast<size_t>(id)].rows;
  }

  /// Convenience baseline: the cost of answering the same queries with
  /// independent scans (one full scan each) — for the sharing experiments.
  static double IndependentScansCost(const Table& table, int num_queries,
                                     const CostModel& cm);

 private:
  struct Attached {
    CompiledPredicate compiled;
    bool collect_rows = false;
    int64_t count = 0;
    std::vector<int64_t> rows;
  };

  const Table* table_;
  std::vector<Attached> queries_;
};

}  // namespace rqp

#endif  // RQP_EXEC_SHARED_SCAN_H_
