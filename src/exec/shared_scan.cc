#include "exec/shared_scan.h"

namespace rqp {

StatusOr<int> SharedScan::Attach(PredicatePtr predicate, bool collect_rows) {
  std::vector<std::string> slots;
  for (size_t c = 0; c < table_->schema().num_columns(); ++c) {
    slots.push_back(table_->schema().column(c).name);
  }
  auto compiled = CompiledPredicate::Compile(predicate, slots);
  if (!compiled.ok()) return compiled.status();
  Attached attached{std::move(compiled.value()), collect_rows, 0, {}};
  queries_.push_back(std::move(attached));
  return static_cast<int>(queries_.size()) - 1;
}

Status SharedScan::Execute(ExecContext* ctx) {
  for (auto& q : queries_) {
    q.count = 0;
    q.rows.clear();
  }
  const size_t num_cols = table_->schema().num_columns();
  std::vector<int64_t> row(num_cols);
  // One sequential pass, shared by every attached query.
  ctx->ChargeSeqPages(table_->num_pages());
  ctx->ChargeRowCpu(table_->num_rows());
  for (int64_t r = 0; r < table_->num_rows(); ++r) {
    for (size_t c = 0; c < num_cols; ++c) row[c] = table_->Value(c, r);
    for (auto& q : queries_) {
      ctx->ChargePredicateEvals(1);
      if (q.compiled.Eval(row.data())) {
        ++q.count;
        if (q.collect_rows) q.rows.push_back(r);
      }
    }
  }
  return Status::OK();
}

double SharedScan::IndependentScansCost(const Table& table, int num_queries,
                                        const CostModel& cm) {
  const double per_query =
      static_cast<double>(table.num_pages()) * cm.seq_page_read +
      2.0 * static_cast<double>(table.num_rows()) * cm.row_cpu;
  return per_query * num_queries;
}

}  // namespace rqp
