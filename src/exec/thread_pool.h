#ifndef RQP_EXEC_THREAD_POOL_H_
#define RQP_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rqp {

/// A shared worker pool for morsel-driven parallel phases. The pool owns
/// `num_threads - 1` background threads; the caller of RunOnWorkers acts as
/// worker 0, so a 1-thread pool degenerates to plain inline execution with
/// no threads spawned at all.
///
/// RunOnWorkers is the parallel phase's barrier: it returns only after every
/// participating worker has finished, which is what lets the coordinator
/// merge thread-local state (per-worker counters, partial aggregates)
/// without further synchronization.
///
/// Concurrency contract (PR 6): *concurrent* RunOnWorkers calls from
/// distinct threads (many queries sharing one pool) are safe — phases are
/// serialized through a run mutex, one parallel phase at a time per pool,
/// later callers block until the current phase drains. What is NOT legal is
/// *re-entry*: calling RunOnWorkers from inside a phase callback (from any
/// participating worker, including the caller acting as worker 0) would
/// self-deadlock on the run mutex, so it aborts with a diagnostic instead.
/// Nested parallel subtrees must run their inner phase from coordinator
/// code outside any phase (which is what the parallel operators do: the
/// build side completes its phase before the probe phase starts).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(worker_id)` for worker ids [0, n); the calling thread executes
  /// worker 0 and the call blocks until every worker returns. `n` is clamped
  /// to [1, num_threads()]. `fn` must be internally synchronized; exceptions
  /// must not escape it. Safe to call concurrently from many threads (calls
  /// serialize); aborts if called from inside a running phase (see the class
  /// comment).
  void RunOnWorkers(int n, const std::function<void(int)>& fn);

  /// True while the calling thread is executing a phase callback (as any
  /// worker, on any pool). Guards against re-entrant RunOnWorkers, which
  /// would self-deadlock on the phase mutex.
  static bool InParallelPhase();

 private:
  void WorkerMain(int background_id);

  int num_threads_;
  std::vector<std::thread> threads_;

  std::mutex run_mu_;  ///< one parallel phase at a time

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  int job_workers_ = 0;   ///< workers participating in the current phase
  uint64_t generation_ = 0;
  int pending_ = 0;       ///< background workers still running the phase
  bool shutdown_ = false;
};

}  // namespace rqp

#endif  // RQP_EXEC_THREAD_POOL_H_
