#include "exec/join_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rqp {
namespace {

/// Finds a slot index by name; returns -1 if absent.
int FindSlot(const std::vector<std::string>& slots, const std::string& name) {
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> ConcatSlots(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  std::vector<std::string> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

Status MaterializeChild(Operator* child, ExecContext* ctx, RowBuffer* buf) {
  buf->num_cols = child->output_slots().size();
  buf->data.clear();
  RQP_RETURN_IF_ERROR(child->Open(ctx));
  while (true) {
    RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
    RowBatch batch;
    RQP_RETURN_IF_ERROR(child->Next(&batch));
    if (batch.empty()) break;
    buf->data.insert(buf->data.end(), batch.data().begin(),
                     batch.data().end());
  }
  child->Close();
  return Status::OK();
}

// ---- HashJoinOp ------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr probe_child, OperatorPtr build_child,
                       std::string probe_key_slot, std::string build_key_slot)
    : probe_child_(std::move(probe_child)),
      build_child_(std::move(build_child)),
      probe_key_(std::move(probe_key_slot)),
      build_key_(std::move(build_key_slot)) {
  slots_ = ConcatSlots(probe_child_->output_slots(),
                       build_child_->output_slots());
}

Status HashJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  done_ = false;
  probe_row_ = 0;
  match_next_ = 0;
  match_rows_.clear();
  probe_batch_.Clear();
  pending_spill_pages_ = 0;

  const int pk = FindSlot(probe_child_->output_slots(), probe_key_);
  const int bk = FindSlot(build_child_->output_slots(), build_key_);
  if (pk < 0 || bk < 0) {
    return Status::InvalidArgument("hash join key slot not found: " +
                                   (pk < 0 ? probe_key_ : build_key_));
  }
  probe_key_idx_ = static_cast<size_t>(pk);
  build_key_idx_ = static_cast<size_t>(bk);

  RQP_RETURN_IF_ERROR(MaterializeChild(build_child_.get(), ctx, &build_));
  const int64_t build_pages = std::max<int64_t>(1, build_.num_pages());
  granted_pages_ = ctx->memory()->Grant(build_pages);
  spill_fraction_ =
      granted_pages_ >= build_pages
          ? 0.0
          : 1.0 - static_cast<double>(granted_pages_) /
                      static_cast<double>(build_pages);
  if (spill_fraction_ > 0.0) {
    // Grace partitioning: the overflow fraction of the build side is
    // written out and re-read once.
    const double spilled =
        spill_fraction_ * static_cast<double>(build_pages);
    ctx->ChargeSpill(static_cast<int64_t>(std::ceil(spilled)),
                     static_cast<int64_t>(std::ceil(spilled)));
  }
  table_.clear();
  table_.reserve(build_.num_rows());
  for (size_t r = 0; r < build_.num_rows(); ++r) {
    table_.emplace(build_.row(r)[build_key_idx_], r);
  }
  ctx->ChargeHashOps(static_cast<int64_t>(
      static_cast<double>(build_.num_rows()) *
      ctx->cost_model().hash_build_factor));

  RQP_RETURN_IF_ERROR(probe_child_->Open(ctx));
  return Status::OK();
}

Status HashJoinOp::Next(RowBatch* out) {
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  out->Reset(slots_.size());
  const size_t left_n = probe_child_->output_slots().size();
  while (!out->full() && !done_) {
    if (match_next_ < match_rows_.size()) {
      const int64_t* lrow = probe_batch_.row(probe_row_);
      const int64_t* rrow = build_.row(match_rows_[match_next_++]);
      out->AppendConcat(lrow, left_n, rrow, build_.num_cols);
      continue;
    }
    // Advance to next probe row.
    ++probe_row_;
    if (probe_batch_.empty() || probe_row_ >= probe_batch_.num_rows()) {
      RQP_RETURN_IF_ERROR(probe_child_->Next(&probe_batch_));
      if (probe_batch_.empty()) { done_ = true; break; }
      probe_row_ = 0;
      // Spilled probe fraction pays partition I/O.
      if (spill_fraction_ > 0.0) {
        pending_spill_pages_ +=
            spill_fraction_ *
            static_cast<double>(probe_batch_.num_rows()) / kRowsPerPage;
        const int64_t whole = static_cast<int64_t>(pending_spill_pages_);
        if (whole > 0) {
          ctx_->ChargeSpill(whole, whole);
          pending_spill_pages_ -= static_cast<double>(whole);
        }
      }
    }
    ctx_->ChargeHashOps(1);
    match_rows_.clear();
    match_next_ = 0;
    auto [begin, end] =
        table_.equal_range(probe_batch_.row(probe_row_)[probe_key_idx_]);
    for (auto it = begin; it != end; ++it) match_rows_.push_back(it->second);
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void HashJoinOp::Close() {
  if (ctx_ != nullptr) ctx_->memory()->Release(granted_pages_);
  granted_pages_ = 0;
  table_.clear();
  build_ = RowBuffer{};
}

// ---- MergeJoinOp -----------------------------------------------------------

MergeJoinOp::MergeJoinOp(OperatorPtr left, OperatorPtr right,
                         std::string left_key_slot,
                         std::string right_key_slot)
    : left_child_(std::move(left)), right_child_(std::move(right)),
      left_key_(std::move(left_key_slot)),
      right_key_(std::move(right_key_slot)) {
  slots_ = ConcatSlots(left_child_->output_slots(),
                       right_child_->output_slots());
}

Status MergeJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  li_ = ri_ = 0;
  in_group_ = false;
  const int lk = FindSlot(left_child_->output_slots(), left_key_);
  const int rk = FindSlot(right_child_->output_slots(), right_key_);
  if (lk < 0 || rk < 0) {
    return Status::InvalidArgument("merge join key slot not found");
  }
  left_key_idx_ = static_cast<size_t>(lk);
  right_key_idx_ = static_cast<size_t>(rk);
  RQP_RETURN_IF_ERROR(MaterializeChild(left_child_.get(), ctx, &left_));
  RQP_RETURN_IF_ERROR(MaterializeChild(right_child_.get(), ctx, &right_));
  return Status::OK();
}

Status MergeJoinOp::Next(RowBatch* out) {
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  out->Reset(slots_.size());
  const size_t ln = left_.num_cols;
  while (!out->full()) {
    if (in_group_) {
      // Emit the cross product of the current equal-key group.
      if (group_r_ < group_r_end_) {
        out->AppendConcat(left_.row(group_l_), ln, right_.row(group_r_),
                          right_.num_cols);
        ++group_r_;
        continue;
      }
      // Next left row of the group (same key) restarts the right group.
      ++group_l_;
      if (group_l_ < left_.num_rows() &&
          left_.row(group_l_)[left_key_idx_] ==
              right_.row(ri_)[right_key_idx_]) {
        group_r_ = ri_;
        continue;
      }
      // Group exhausted.
      li_ = group_l_;
      ri_ = group_r_end_;
      in_group_ = false;
      continue;
    }
    if (li_ >= left_.num_rows() || ri_ >= right_.num_rows()) break;
    const int64_t lk = left_.row(li_)[left_key_idx_];
    const int64_t rk = right_.row(ri_)[right_key_idx_];
    ctx_->ChargeCompareOps(1);
    if (lk < rk) {
      ++li_;
    } else if (lk > rk) {
      ++ri_;
    } else {
      // Found an equal-key group: [ri_, group_r_end_) on the right.
      group_r_end_ = ri_;
      while (group_r_end_ < right_.num_rows() &&
             right_.row(group_r_end_)[right_key_idx_] == rk) {
        ++group_r_end_;
        ctx_->ChargeCompareOps(1);
      }
      group_l_ = li_;
      group_r_ = ri_;
      in_group_ = true;
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void MergeJoinOp::Close() {
  left_ = RowBuffer{};
  right_ = RowBuffer{};
}

// ---- NestedLoopsJoinOp -----------------------------------------------------

NestedLoopsJoinOp::NestedLoopsJoinOp(OperatorPtr left, OperatorPtr right,
                                     PredicatePtr join_predicate)
    : left_child_(std::move(left)), right_child_(std::move(right)),
      predicate_(std::move(join_predicate)) {
  slots_ = ConcatSlots(left_child_->output_slots(),
                       right_child_->output_slots());
}

Status NestedLoopsJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  done_ = false;
  left_row_ = 0;
  right_row_ = 0;
  left_batch_.Clear();
  if (predicate_ != nullptr) {
    auto compiled = CompiledPredicate::Compile(predicate_, slots_);
    if (!compiled.ok()) return compiled.status();
    compiled_ = std::move(compiled.value());
  }
  RQP_RETURN_IF_ERROR(MaterializeChild(right_child_.get(), ctx, &right_));
  RQP_RETURN_IF_ERROR(left_child_->Open(ctx));
  return Status::OK();
}

Status NestedLoopsJoinOp::Next(RowBatch* out) {
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  out->Reset(slots_.size());
  const size_t ln = left_child_->output_slots().size();
  std::vector<int64_t> joined(slots_.size());
  while (!out->full() && !done_) {
    if (left_batch_.empty() || left_row_ >= left_batch_.num_rows()) {
      RQP_RETURN_IF_ERROR(left_child_->Next(&left_batch_));
      if (left_batch_.empty()) { done_ = true; break; }
      left_row_ = 0;
      right_row_ = 0;
    }
    const int64_t* lrow = left_batch_.row(left_row_);
    while (right_row_ < right_.num_rows() && !out->full()) {
      const int64_t* rrow = right_.row(right_row_++);
      bool pass = true;
      if (compiled_) {
        std::copy(lrow, lrow + ln, joined.begin());
        std::copy(rrow, rrow + right_.num_cols,
                  joined.begin() + static_cast<long>(ln));
        ctx_->ChargePredicateEvals(1);
        pass = compiled_->Eval(joined.data());
      } else {
        ctx_->ChargeRowCpu(1);
      }
      if (pass) out->AppendConcat(lrow, ln, rrow, right_.num_cols);
    }
    if (right_row_ >= right_.num_rows()) {
      ++left_row_;
      right_row_ = 0;
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void NestedLoopsJoinOp::Close() { right_ = RowBuffer{}; }

// ---- IndexNLJoinOp ---------------------------------------------------------

IndexNLJoinOp::IndexNLJoinOp(OperatorPtr outer, const Table* inner,
                             const SortedIndex* inner_index,
                             std::string outer_key_slot)
    : outer_child_(std::move(outer)), inner_(inner), index_(inner_index),
      outer_key_(std::move(outer_key_slot)) {
  std::vector<std::string> inner_slots;
  for (size_t c = 0; c < inner_->schema().num_columns(); ++c) {
    inner_slots.push_back(inner_->name() + "." +
                          inner_->schema().column(c).name);
  }
  slots_ = ConcatSlots(outer_child_->output_slots(), inner_slots);
}

Status IndexNLJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  done_ = false;
  outer_row_ = 0;
  match_next_ = 0;
  inner_matches_.clear();
  outer_batch_.Clear();
  const int ok = FindSlot(outer_child_->output_slots(), outer_key_);
  if (ok < 0) {
    return Status::InvalidArgument("index NL join outer key slot not found: " +
                                   outer_key_);
  }
  outer_key_idx_ = static_cast<size_t>(ok);
  RQP_RETURN_IF_ERROR(outer_child_->Open(ctx));
  return Status::OK();
}

Status IndexNLJoinOp::Next(RowBatch* out) {
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  out->Reset(slots_.size());
  const size_t ln = outer_child_->output_slots().size();
  const size_t in_cols = inner_->schema().num_columns();
  std::vector<int64_t> inner_row(in_cols);
  while (!out->full() && !done_) {
    if (match_next_ < inner_matches_.size()) {
      const int64_t r = inner_matches_[match_next_++];
      // Random page fetch for the inner row.
      ctx_->ChargeRandomReads(1, inner_->name());
      for (size_t c = 0; c < in_cols; ++c) {
        inner_row[c] = inner_->Value(c, r);
      }
      out->AppendConcat(outer_batch_.row(outer_row_), ln, inner_row.data(),
                        in_cols);
      continue;
    }
    ++outer_row_;
    if (outer_batch_.empty() || outer_row_ >= outer_batch_.num_rows()) {
      RQP_RETURN_IF_ERROR(outer_child_->Next(&outer_batch_));
      if (outer_batch_.empty()) { done_ = true; break; }
      outer_row_ = 0;
    }
    const int64_t key = outer_batch_.row(outer_row_)[outer_key_idx_];
    inner_matches_.clear();
    match_next_ = 0;
    ctx_->ChargeIndexDescend();
    index_->LookupRange(key, key, &inner_matches_);
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void IndexNLJoinOp::Close() {}

// ---- GJoinOp ---------------------------------------------------------------

GJoinOp::GJoinOp(OperatorPtr left, OperatorPtr right,
                 std::string left_key_slot, std::string right_key_slot,
                 Hints hints)
    : left_child_(std::move(left)), right_child_(std::move(right)),
      left_key_(std::move(left_key_slot)),
      right_key_(std::move(right_key_slot)), hints_(hints) {
  slots_ = ConcatSlots(left_child_->output_slots(),
                       right_child_->output_slots());
}

Status GJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  spool_.clear();
  spool_next_ = 0;
  const int lk = FindSlot(left_child_->output_slots(), left_key_);
  const int rk = FindSlot(right_child_->output_slots(), right_key_);
  if (lk < 0 || rk < 0) {
    return Status::InvalidArgument("g-join key slot not found");
  }
  left_key_idx_ = static_cast<size_t>(lk);
  right_key_idx_ = static_cast<size_t>(rk);
  // The left (outer) input is always consumed first; its *actual* size then
  // drives the strategy choice — this is what makes the operator robust
  // against optimizer size-estimate mistakes.
  RQP_RETURN_IF_ERROR(MaterializeChild(left_child_.get(), ctx, &left_));

  const CostModel& cm = ctx->cost_model();
  const bool can_index =
      hints_.right_index != nullptr && hints_.right_table != nullptr;
  if (can_index) {
    // Probing the persistent index avoids reading the inner input at all;
    // compare against the cheapest alternative that must consume it.
    const double nl = static_cast<double>(left_.num_rows());
    const double nr = static_cast<double>(hints_.right_table->num_rows());
    const double index_cost =
        nl * (cm.index_descend + cm.random_page_read);
    const double consume_inner_cost =
        static_cast<double>(hints_.right_table->num_pages()) *
            cm.seq_page_read +
        (std::min(nl, nr) + nl + nr) * cm.hash_op;
    if (index_cost < consume_inner_cost) {
      right_.num_cols = right_child_->output_slots().size();
      return EmitAll();  // EmitAll sees an empty right_ and probes the index
    }
  }
  RQP_RETURN_IF_ERROR(MaterializeChild(right_child_.get(), ctx, &right_));
  return EmitAll();
}

Status GJoinOp::EmitAll() {
  const double nl = static_cast<double>(left_.num_rows());
  const double nr = static_cast<double>(right_.num_rows());
  const CostModel& cm = ctx_->cost_model();

  const bool index_mode = right_.data.empty() && hints_.right_index != nullptr &&
                          hints_.right_table != nullptr &&
                          hints_.right_table->num_rows() > 0;
  const bool can_merge =
      !index_mode && hints_.left_sorted && hints_.right_sorted;
  const double merge_cost = can_merge ? (nl + nr) * cm.compare_op : 1e300;
  const double hash_cost =
      index_mode ? 1e300 : (std::min(nl, nr) + nl + nr) * cm.hash_op;

  RowBatch batch(slots_.size());
  auto flush = [&]() {
    if (!batch.empty()) {
      spool_.push_back(std::move(batch));
      batch = RowBatch(slots_.size());
    }
  };
  const size_t right_cols = right_.num_cols;
  auto emit = [&](const int64_t* l, const int64_t* r) {
    batch.AppendConcat(l, left_.num_cols, r, right_cols);
    if (batch.full()) flush();
  };

  if (index_mode) {
    strategy_ = "index";
    std::vector<int64_t> matches;
    std::vector<int64_t> inner_row(right_cols);
    for (size_t a = 0; a < left_.num_rows(); ++a) {
      if ((a & (kBatchRows - 1)) == 0) {
        RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      }
      matches.clear();
      ctx_->ChargeIndexDescend();
      hints_.right_index->LookupRange(left_.row(a)[left_key_idx_],
                                      left_.row(a)[left_key_idx_], &matches);
      for (int64_t r : matches) {
        ctx_->ChargeRandomReads(1, hints_.right_table->name());
        for (size_t c = 0; c < right_cols; ++c) {
          inner_row[c] = hints_.right_table->Value(c, r);
        }
        emit(left_.row(a), inner_row.data());
      }
    }
    flush();
    return Status::OK();
  }

  if (can_merge && merge_cost <= hash_cost) {
    strategy_ = "merge";
    size_t li = 0, ri = 0;
    size_t steps = 0;
    while (li < left_.num_rows() && ri < right_.num_rows()) {
      if ((steps++ & (kBatchRows - 1)) == 0) {
        RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      }
      const int64_t lk = left_.row(li)[left_key_idx_];
      const int64_t rk = right_.row(ri)[right_key_idx_];
      ctx_->ChargeCompareOps(1);
      if (lk < rk) { ++li; continue; }
      if (lk > rk) { ++ri; continue; }
      size_t r_end = ri;
      while (r_end < right_.num_rows() &&
             right_.row(r_end)[right_key_idx_] == lk) {
        ++r_end;
      }
      size_t l_end = li;
      while (l_end < left_.num_rows() &&
             left_.row(l_end)[left_key_idx_] == lk) {
        ++l_end;
      }
      for (size_t a = li; a < l_end; ++a) {
        for (size_t b = ri; b < r_end; ++b) {
          emit(left_.row(a), right_.row(b));
        }
      }
      li = l_end;
      ri = r_end;
    }
  } else {
    // Hash with the build on the actually-smaller side.
    const bool build_left = left_.num_rows() <= right_.num_rows();
    strategy_ = build_left ? "hash(build=left)" : "hash(build=right)";
    const RowBuffer& build = build_left ? left_ : right_;
    const RowBuffer& probe = build_left ? right_ : left_;
    const size_t build_key = build_left ? left_key_idx_ : right_key_idx_;
    const size_t probe_key = build_left ? right_key_idx_ : left_key_idx_;
    const int64_t build_pages = std::max<int64_t>(1, build.num_pages());
    const int64_t granted = ctx_->memory()->Grant(build_pages);
    if (granted < build_pages) {
      const double f = 1.0 - static_cast<double>(granted) /
                                 static_cast<double>(build_pages);
      const int64_t spill = static_cast<int64_t>(
          std::ceil(f * static_cast<double>(build_pages + probe.num_pages())));
      ctx_->ChargeSpill(spill, spill);
    }
    std::unordered_multimap<int64_t, size_t> table;
    table.reserve(build.num_rows());
    for (size_t r = 0; r < build.num_rows(); ++r) {
      table.emplace(build.row(r)[build_key], r);
    }
    ctx_->ChargeHashOps(static_cast<int64_t>(
        static_cast<double>(build.num_rows()) * cm.hash_build_factor));
    for (size_t p = 0; p < probe.num_rows(); ++p) {
      if ((p & (kBatchRows - 1)) == 0) {
        RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      }
      ctx_->ChargeHashOps(1);
      auto [begin, end] = table.equal_range(probe.row(p)[probe_key]);
      for (auto it = begin; it != end; ++it) {
        const int64_t* l =
            build_left ? build.row(it->second) : probe.row(p);
        const int64_t* r =
            build_left ? probe.row(p) : build.row(it->second);
        emit(l, r);
      }
    }
    ctx_->memory()->Release(granted);
  }
  flush();
  return Status::OK();
}

Status GJoinOp::Next(RowBatch* out) {
  if (spool_next_ < spool_.size()) {
    *out = spool_[spool_next_++];
  } else {
    out->Reset(slots_.size());
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void GJoinOp::Close() {
  left_ = RowBuffer{};
  right_ = RowBuffer{};
  spool_.clear();
}

}  // namespace rqp
