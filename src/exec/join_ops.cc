#include "exec/join_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "expr/simd.h"

namespace rqp {
namespace {

/// Finds a slot index by name; returns -1 if absent.
int FindSlot(const std::vector<std::string>& slots, const std::string& name) {
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> ConcatSlots(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  std::vector<std::string> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

void JoinHashTable::Build(const RowBuffer& rows, size_t key_idx) {
  const size_t n = rows.num_rows();
  size_t buckets = 1;
  while (buckets < n) buckets <<= 1;  // load factor <= 1
  // Floor the bucket count for sparse non-empty tables: with one bucket per
  // row a 2-row table sends half of all probes into a chain walk. Extra
  // buckets only respread keys — match results and order are bucket-count
  // independent — but they let the vectorized head-fetch pass reject misses
  // without touching a chain. 64 empty heads cost 256 bytes.
  if (n > 0 && buckets < kMinBuckets) buckets = kMinBuckets;
  heads.assign(buckets, kEmpty);
  nexts.resize(n);
  bucket_mask = static_cast<uint64_t>(buckets - 1);
  // Prepend in reverse row order so each chain reads forward in build-row
  // order — the defined match order both probe modes rely on.
  for (size_t i = n; i-- > 0;) {
    const size_t b = BucketOf(rows.row(i)[key_idx]);
    nexts[i] = heads[b];
    heads[b] = static_cast<uint32_t>(i);
  }
}

Status MaterializeChild(Operator* child, ExecContext* ctx, RowBuffer* buf) {
  buf->num_cols = child->output_slots().size();
  buf->data.clear();
  RQP_RETURN_IF_ERROR(child->Open(ctx));
  while (true) {
    RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
    RowBatch batch;
    RQP_RETURN_IF_ERROR(child->Next(&batch));
    if (batch.empty()) break;
    buf->data.insert(buf->data.end(), batch.data().begin(),
                     batch.data().end());
  }
  child->Close();
  return Status::OK();
}

// ---- HashJoinOp ------------------------------------------------------------

HashJoinOp::HashJoinOp(OperatorPtr probe_child, OperatorPtr build_child,
                       std::string probe_key_slot, std::string build_key_slot,
                       Options options)
    : probe_child_(std::move(probe_child)),
      build_child_(std::move(build_child)),
      probe_key_(std::move(probe_key_slot)),
      build_key_(std::move(build_key_slot)),
      options_(options) {
  slots_ = ConcatSlots(probe_child_->output_slots(),
                       build_child_->output_slots());
  if (options_.fan_out < 2) options_.fan_out = 2;
  if (options_.max_recursion < 1) options_.max_recursion = 1;
  // x % 2^k == x & (2^k - 1) for unsigned x: for the (default) power-of-two
  // fan-out the partition reduction is a mask instead of a hardware divide.
  // PartitionOf runs once per build row and once per probe row, and a
  // runtime-divisor div is ~25 cycles the probe loop otherwise eats.
  const uint64_t f = static_cast<uint64_t>(options_.fan_out);
  fan_mask_ = (f & (f - 1)) == 0 ? f - 1 : 0;
}

HashJoinOp::~HashJoinOp() {
  // DrainOperator does not Close() on error paths: grants and registration
  // must not outlive the operator.
  ReleaseAllMemory();
  if (registered_ && broker_ != nullptr) {
    broker_->Unregister(this);
    registered_ = false;
  }
}

size_t HashJoinOp::PartitionOf(int64_t key) const {
  // splitmix64-style finalizer salted by recursion depth, so each level
  // splits keys independently — and independently of the JoinHashTable
  // bucket function (murmur3 fmix64) used inside a partition.
  uint64_t x = static_cast<uint64_t>(key) +
               0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(depth_ + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  if (fan_mask_ != 0) return static_cast<size_t>(x & fan_mask_);
  return static_cast<size_t>(x % static_cast<uint64_t>(options_.fan_out));
}

Status HashJoinOp::SpillPartition(size_t part_idx) {
  Partition& part = parts_[part_idx];
  if (part.spilled) return Status::OK();
  if (part.build_spill == nullptr) {
    auto file = ctx_->spill()->Create(build_cols_);
    if (!file.ok()) return file.status();
    part.build_spill = std::move(file).value();
    ++ctx_->counters().spill_partitions;
  }
  for (size_t r = 0; r < part.rows.num_rows(); ++r) {
    RQP_RETURN_IF_ERROR(part.build_spill->AppendRow(part.rows.row(r)));
  }
  if (depth_ == 0) {
    build_rows_spilled_ += static_cast<int64_t>(part.rows.num_rows());
  }
  ctx_->memory()->Release(part.charged_pages);
  part.charged_pages = 0;
  part.rows.data.clear();
  part.table.clear();
  part.spilled = true;
  return Status::OK();
}

Status HashJoinOp::EnsurePartitionPage(size_t part_idx) {
  while (true) {
    Partition& part = parts_[part_idx];
    if (part.spilled) return Status::OK();  // evicted below; rows on disk
    if (ctx_->memory()->available() > 0) {
      ctx_->memory()->Grant(1);
      ++part.charged_pages;
      return Status::OK();
    }
    // Memory exhausted: evict the largest resident partition (ties broken
    // by lowest index, keeping runs deterministic).
    int victim = -1;
    int64_t victim_pages = 0;
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (!parts_[i].spilled && parts_[i].charged_pages > victim_pages) {
        victim_pages = parts_[i].charged_pages;
        victim = static_cast<int>(i);
      }
    }
    if (victim < 0) {
      // Nothing left to evict: take the 1-page progress minimum (the broker
      // over-commits rather than deadlocks).
      ctx_->memory()->Grant(1);
      ++part.charged_pages;
      return Status::OK();
    }
    RQP_RETURN_IF_ERROR(SpillPartition(static_cast<size_t>(victim)));
    if (static_cast<size_t>(victim) == part_idx) return Status::OK();
  }
}

Status HashJoinOp::PartitionBuildRow(const int64_t* row) {
  const size_t p = PartitionOf(row[build_key_idx_]);
  Partition& part = parts_[p];
  if (part.spilled) {
    if (depth_ == 0) ++build_rows_spilled_;
    return part.build_spill->AppendRow(row);
  }
  part.rows.Append(row);
  if (part.rows.num_pages() > part.charged_pages) {
    RQP_RETURN_IF_ERROR(EnsurePartitionPage(p));
  }
  return Status::OK();
}

Status HashJoinOp::FinishBuildPhase() {
  for (Partition& part : parts_) {
    if (part.spilled) continue;
    // Empty resident partitions get a 1-bucket table whose single head is
    // kEmpty: the vectorized probe's head-fetch pass can then load every
    // partition's bucket unconditionally instead of branching on emptiness.
    part.table.Build(part.rows, build_key_idx_);
    if (part.rows.num_rows() == 0) continue;
    ctx_->ChargeHashOps(static_cast<int64_t>(
        static_cast<double>(part.rows.num_rows()) *
        ctx_->cost_model().hash_build_factor));
  }
  return Status::OK();
}

Status HashJoinOp::RunBuildFromChild(ExecContext* ctx) {
  parts_ = std::vector<Partition>(static_cast<size_t>(options_.fan_out));
  for (Partition& part : parts_) part.rows.num_cols = build_cols_;
  RQP_RETURN_IF_ERROR(build_child_->Open(ctx));
  while (true) {
    RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
    RowBatch batch;
    RQP_RETURN_IF_ERROR(build_child_->Next(&batch));
    if (batch.empty()) break;
    // Poll at batch start (the phase boundary) before absorbing rows, so a
    // capacity drop charged during the child's Next is shed as a revocation
    // rather than resolved incidentally by the eviction path.
    RQP_RETURN_IF_ERROR(PollRevocation());
    ctx->ChargeHashOps(static_cast<int64_t>(batch.num_rows()));
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      ++build_rows_total_;
      RQP_RETURN_IF_ERROR(PartitionBuildRow(batch.row(r)));
    }
  }
  build_child_->Close();
  spill_fraction_ =
      build_rows_total_ == 0
          ? 0.0
          : static_cast<double>(build_rows_spilled_) /
                static_cast<double>(build_rows_total_);
  return FinishBuildPhase();
}

Status HashJoinOp::RunBuildFromFile(SpillFile* file) {
  parts_ = std::vector<Partition>(static_cast<size_t>(options_.fan_out));
  for (Partition& part : parts_) part.rows.num_cols = build_cols_;
  RQP_RETURN_IF_ERROR(file->Rewind());
  while (true) {
    RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
    RowBatch batch;
    RQP_RETURN_IF_ERROR(file->ReadBatch(&batch));
    if (batch.empty()) break;
    RQP_RETURN_IF_ERROR(PollRevocation());
    ctx_->ChargeHashOps(static_cast<int64_t>(batch.num_rows()));
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      RQP_RETURN_IF_ERROR(PartitionBuildRow(batch.row(r)));
    }
  }
  return FinishBuildPhase();
}

Status HashJoinOp::FetchProbeBatch() {
  if (probe_file_ == nullptr) {
    if (columnar_) return FetchProbeBatchColumnar();
    RQP_RETURN_IF_ERROR(probe_child_->Next(&probe_batch_));
  } else {
    RQP_RETURN_IF_ERROR(probe_file_->ReadBatch(&probe_batch_));
  }
  probe_via_views_ = false;
  probe_row_ = 0;
  // Batch boundary = phase boundary: no live match references, safe to shed.
  if (!probe_batch_.empty()) {
    RQP_RETURN_IF_ERROR(PollRevocation());
    if (vectorized_) {
      // Fused whole-batch probe: charge every probe in one flush, compute
      // every row's partition in one pass, route spilled-partition rows to
      // their probe files in row order, and walk the flat hash chains for
      // resident rows into fused_pairs_. Emission in Next() is then a bare
      // cursor over precomputed (probe row, build row) pairs. The scalar
      // path's per-row charges and spill appends all land within this same
      // batch window, so totals and the clock at every batch boundary agree
      // (DESIGN.md §10), and spill-file contents stay in row order.
      const size_t n = probe_batch_.num_rows();
      ctx_->ChargeHashOps(static_cast<int64_t>(n));
      probe_keys_.resize(n);
      probe_parts_.resize(n);
      const int64_t* key_col = probe_batch_.data().data() + probe_key_idx_;
      const size_t stride = probe_batch_.num_cols();
      fused_pairs_.clear();
      fused_next_ = 0;
      bool any_spilled = false;
      for (const Partition& part : parts_) any_spilled |= part.spilled;
      if (!any_spilled) {
        // In-memory fast path: a two-pass branchless probe. Mispredicted
        // per-row branches are what the scalar probe pays for — keys arrive
        // in random order, so "is this bucket empty" and "does this key
        // match" never predict. Pass 1 fuses the key gather, the partition
        // precompute, and an unconditional bucket-head fetch (every resident
        // partition has a built table, even the empty ones), compacting the
        // rows with non-empty heads by branch-free index append. Pass 2
        // walks chains only for those candidates, emitting matches with an
        // arithmetic k-bump instead of a conditional append. Match order is
        // unchanged: probe-row major, build-row order within a chain.
        cand_rows_.resize(n);
        cand_heads_.resize(n);
        size_t cands = 0;
        for (size_t i = 0; i < n; ++i) {
          const int64_t key = key_col[i * stride];
          probe_keys_[i] = key;
          const uint32_t p = static_cast<uint32_t>(PartitionOf(key));
          probe_parts_[i] = p;
          const JoinHashTable& t = parts_[p].table;
          const uint32_t head = t.heads[JoinHashTable::Mix(key) & t.bucket_mask];
          cand_rows_[cands] = static_cast<uint32_t>(i);
          cand_heads_[cands] = head;
          cands += head != JoinHashTable::kEmpty;
        }
        size_t k = 0;
        if (fused_pairs_.size() < cands) fused_pairs_.resize(cands);
        for (size_t c = 0; c < cands; ++c) {
          const uint32_t i = cand_rows_[c];
          const int64_t key = probe_keys_[i];
          const Partition& part = parts_[probe_parts_[i]];
          const uint32_t* nexts = part.table.nexts.data();
          const int64_t* rows = part.rows.data.data();
          const size_t width = part.rows.num_cols;
          for (uint32_t r = cand_heads_[c]; r != JoinHashTable::kEmpty;
               r = nexts[r]) {
            if (k == fused_pairs_.size()) fused_pairs_.resize(2 * k + 64);
            fused_pairs_[k] = {i, r};
            k += rows[r * width + build_key_idx_] == key;
          }
        }
        fused_pairs_.resize(k);
      } else {
        // Spill path: keys and partitions still precompute in one stride-1
        // pass; routing then appends spilled-partition rows in row order.
        for (size_t i = 0; i < n; ++i) {
          probe_keys_[i] = key_col[i * stride];
          probe_parts_[i] = static_cast<uint32_t>(PartitionOf(probe_keys_[i]));
        }
        for (size_t i = 0; i < n; ++i) {
          Partition& part = parts_[probe_parts_[i]];
          if (part.spilled) {
            if (part.probe_spill == nullptr) {
              auto file = ctx_->spill()->Create(probe_cols_);
              if (!file.ok()) return file.status();
              part.probe_spill = std::move(file).value();
            }
            RQP_RETURN_IF_ERROR(part.probe_spill->AppendRow(probe_batch_.row(i)));
            continue;
          }
          part.table.ForEachMatch(
              part.rows, build_key_idx_, probe_keys_[i], [&](size_t r) {
                fused_pairs_.emplace_back(static_cast<uint32_t>(i),
                                          static_cast<uint32_t>(r));
              });
        }
      }
    }
  }
  return Status::OK();
}

Status HashJoinOp::FetchProbeBatchColumnar() {
  // Depth-0 late-materialized fetch: pull the probe child's column views and
  // run the fused probe off the key column alone. Payload columns are never
  // touched here — emission references them by absolute row id, and only
  // spill routing gathers a full row (on demand, counted as materialized).
  // Charge points, spill-append order, and match order are identical to the
  // row-major fused probe above, so cost and output stay byte-identical.
  RQP_RETURN_IF_ERROR(probe_child_->NextColumnar(&probe_col_));
  probe_via_views_ = true;
  probe_batch_.Clear();
  probe_row_ = 0;
  const size_t n = probe_col_.num_rows();
  if (n == 0) return Status::OK();
  ctx_->counters().transposes_elided += static_cast<int64_t>(n);
  RQP_RETURN_IF_ERROR(PollRevocation());
  ctx_->ChargeHashOps(static_cast<int64_t>(n));
  probe_keys_.resize(n);
  probe_parts_.resize(n);
  probe_mixes_.resize(n);
  // Key gather: stride-free off the dense view, or a selection gather.
  const int64_t* key_base = probe_col_.col(probe_key_idx_).base;
  if (probe_col_.has_selection()) {
    const uint32_t* sel = probe_col_.sel().data();
    for (size_t i = 0; i < n; ++i) probe_keys_[i] = key_base[sel[i]];
  } else {
    const int64_t* src = probe_col_.DensePtr(probe_key_idx_);
    std::copy(src, src + n, probe_keys_.begin());
  }
  // Whole-batch hash mix; the SIMD kernel is integer-exact, so bucket
  // choice, chain walks, and match order are bit-identical at every level.
  SimdMixBatch(probe_keys_.data(), n, probe_mixes_.data(), ctx_->simd());
  fused_pairs_.clear();
  fused_next_ = 0;
  bool any_spilled = false;
  for (const Partition& part : parts_) any_spilled |= part.spilled;
  if (!any_spilled) {
    cand_rows_.resize(n);
    cand_heads_.resize(n);
    size_t cands = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint32_t p = static_cast<uint32_t>(PartitionOf(probe_keys_[i]));
      probe_parts_[i] = p;
      const JoinHashTable& t = parts_[p].table;
      const uint32_t head = t.heads[probe_mixes_[i] & t.bucket_mask];
      cand_rows_[cands] = static_cast<uint32_t>(i);
      cand_heads_[cands] = head;
      cands += head != JoinHashTable::kEmpty;
    }
    size_t k = 0;
    if (fused_pairs_.size() < cands) fused_pairs_.resize(cands);
    for (size_t c = 0; c < cands; ++c) {
      const uint32_t i = cand_rows_[c];
      const int64_t key = probe_keys_[i];
      const Partition& part = parts_[probe_parts_[i]];
      const uint32_t* nexts = part.table.nexts.data();
      const int64_t* rows = part.rows.data.data();
      const size_t width = part.rows.num_cols;
      for (uint32_t r = cand_heads_[c]; r != JoinHashTable::kEmpty;
           r = nexts[r]) {
        if (k == fused_pairs_.size()) fused_pairs_.resize(2 * k + 64);
        fused_pairs_[k] = {i, r};
        k += rows[r * width + build_key_idx_] == key;
      }
    }
    fused_pairs_.resize(k);
  } else {
    for (size_t i = 0; i < n; ++i) {
      probe_parts_[i] = static_cast<uint32_t>(PartitionOf(probe_keys_[i]));
    }
    row_scratch_.resize(probe_cols_);
    for (size_t i = 0; i < n; ++i) {
      Partition& part = parts_[probe_parts_[i]];
      if (part.spilled) {
        if (part.probe_spill == nullptr) {
          auto file = ctx_->spill()->Create(probe_cols_);
          if (!file.ok()) return file.status();
          part.probe_spill = std::move(file).value();
        }
        probe_col_.GatherRow(i, row_scratch_.data());
        ctx_->counters().rows_materialized += 1;
        RQP_RETURN_IF_ERROR(part.probe_spill->AppendRow(row_scratch_.data()));
        continue;
      }
      part.table.ForEachMatch(
          part.rows, build_key_idx_, probe_keys_[i], [&](size_t r) {
            fused_pairs_.emplace_back(static_cast<uint32_t>(i),
                                      static_cast<uint32_t>(r));
          });
    }
  }
  return Status::OK();
}

Status HashJoinOp::FinishProbePhase() {
  if (depth_ == 0) probe_child_->Close();
  for (Partition& part : parts_) {
    if (part.spilled) {
      RQP_RETURN_IF_ERROR(part.build_spill->FinishWrite());
      if (part.probe_spill != nullptr) {
        RQP_RETURN_IF_ERROR(part.probe_spill->FinishWrite());
        if (part.build_spill->rows_written() > 0 &&
            part.probe_spill->rows_written() > 0) {
          tasks_.push_back(PendingTask{std::move(part.build_spill),
                                       std::move(part.probe_spill),
                                       depth_ + 1});
        }
      }
      // Pairs with an empty side produce no matches; dropping the
      // SpillFiles removes their temp files immediately.
    }
    ctx_->memory()->Release(part.charged_pages);
    part.charged_pages = 0;
  }
  parts_.clear();
  probe_file_.reset();
  phase_ = Phase::kTaskSetup;
  return Status::OK();
}

Status HashJoinOp::SetupNextTask() {
  if (tasks_.empty()) {
    phase_ = Phase::kDone;
    done_ = true;
    return Status::OK();
  }
  PendingTask task = std::move(tasks_.back());
  tasks_.pop_back();
  depth_ = task.depth;
  ctx_->counters().spill_recursion_depth = std::max(
      ctx_->counters().spill_recursion_depth, static_cast<int64_t>(depth_));
  probe_file_ = std::move(task.probe);
  RQP_RETURN_IF_ERROR(probe_file_->Rewind());
  probe_batch_.Clear();
  probe_via_views_ = false;
  probe_row_ = 0;
  match_rows_.clear();
  match_next_ = 0;
  fused_pairs_.clear();
  fused_next_ = 0;
  if (depth_ >= options_.max_recursion) {
    // Duplicate-heavy keys defeat re-partitioning; chunked hash probing
    // guarantees progress at any grant.
    fb_build_ = std::move(task.build);
    RQP_RETURN_IF_ERROR(fb_build_->Rewind());
    phase_ = Phase::kChunkLoad;
  } else {
    RQP_RETURN_IF_ERROR(RunBuildFromFile(task.build.get()));
    // task.build is destroyed here, removing the re-partitioned temp file.
    phase_ = Phase::kProbe;
  }
  return Status::OK();
}

Status HashJoinOp::LoadNextChunk() {
  // Chunk boundary = phase boundary: renegotiate the grant so capacity
  // changes (grow or shrink) take effect on the next chunk.
  if (chunk_pages_ > 0) {
    ctx_->memory()->Release(chunk_pages_);
    chunk_pages_ = 0;
  }
  chunk_ = RowBuffer{};
  chunk_.num_cols = build_cols_;
  chunk_table_.clear();
  chunk_pages_ =
      ctx_->memory()->Grant(std::max<int64_t>(1, ctx_->memory()->available()));
  const int64_t max_rows = chunk_pages_ * kRowsPerPage;
  while (static_cast<int64_t>(chunk_.num_rows()) < max_rows) {
    RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
    RowBatch batch;
    RQP_RETURN_IF_ERROR(fb_build_->ReadBatch(
        &batch, max_rows - static_cast<int64_t>(chunk_.num_rows())));
    if (batch.empty()) break;
    for (size_t r = 0; r < batch.num_rows(); ++r) chunk_.Append(batch.row(r));
  }
  if (chunk_.num_rows() == 0) {
    // Build file exhausted: this fallback task is complete.
    ctx_->memory()->Release(chunk_pages_);
    chunk_pages_ = 0;
    fb_build_.reset();
    probe_file_.reset();
    phase_ = Phase::kTaskSetup;
    return Status::OK();
  }
  chunk_table_.Build(chunk_, build_key_idx_);
  ctx_->ChargeHashOps(
      static_cast<int64_t>(static_cast<double>(chunk_.num_rows()) *
                           ctx_->cost_model().hash_build_factor));
  // One full probe pass per chunk; Rewind makes the re-read pay again.
  RQP_RETURN_IF_ERROR(probe_file_->Rewind());
  probe_batch_.Clear();
  probe_row_ = 0;
  match_rows_.clear();
  match_next_ = 0;
  fused_pairs_.clear();
  fused_next_ = 0;
  phase_ = Phase::kChunkProbe;
  return Status::OK();
}

int64_t HashJoinOp::ShedPages(int64_t deficit) {
  // Only resident partitions are sheddable; the chunked fallback and the
  // 1-page progress minimum renegotiate at their own boundaries.
  int64_t released = 0;
  while (released < deficit) {
    int victim = -1;
    int64_t victim_pages = 0;
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (!parts_[i].spilled && parts_[i].charged_pages > victim_pages) {
        victim_pages = parts_[i].charged_pages;
        victim = static_cast<int>(i);
      }
    }
    if (victim < 0) break;
    released += victim_pages;
    const Status s = SpillPartition(static_cast<size_t>(victim));
    if (!s.ok()) {
      shed_error_ = s;
      break;
    }
  }
  return released;
}

Status HashJoinOp::PollRevocation() {
  if (!ctx_->memory()->overcommitted()) return Status::OK();
  const int64_t shed = ctx_->memory()->PollRevocation(this);
  if (shed > 0) ++ctx_->counters().memory_revocations;
  if (!shed_error_.ok()) {
    Status s = shed_error_;
    shed_error_ = Status::OK();
    return s;
  }
  return Status::OK();
}

void HashJoinOp::ReleaseAllMemory() {
  if (broker_ == nullptr) return;
  for (Partition& part : parts_) {
    broker_->Release(part.charged_pages);
    part.charged_pages = 0;
  }
  broker_->Release(chunk_pages_);
  chunk_pages_ = 0;
  broker_->Release(base_pages_);
  base_pages_ = 0;
}

Status HashJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  broker_ = ctx->memory();
  vectorized_ = ctx->vectorized();
  ResetCount();
  done_ = false;
  depth_ = 0;
  parts_.clear();
  tasks_.clear();
  probe_file_.reset();
  fb_build_.reset();
  chunk_ = RowBuffer{};
  chunk_table_.clear();
  probe_batch_.Clear();
  probe_row_ = 0;
  match_rows_.clear();
  match_next_ = 0;
  fused_pairs_.clear();
  fused_next_ = 0;
  columnar_ = false;
  probe_via_views_ = false;
  probe_col_.Reset(0);
  spill_fraction_ = 0;
  build_rows_total_ = 0;
  build_rows_spilled_ = 0;
  shed_error_ = Status::OK();

  const int pk = FindSlot(probe_child_->output_slots(), probe_key_);
  const int bk = FindSlot(build_child_->output_slots(), build_key_);
  if (pk < 0 || bk < 0) {
    return Status::InvalidArgument("hash join key slot not found: " +
                                   (pk < 0 ? probe_key_ : build_key_));
  }
  probe_key_idx_ = static_cast<size_t>(pk);
  build_key_idx_ = static_cast<size_t>(bk);
  probe_cols_ = probe_child_->output_slots().size();
  build_cols_ = build_child_->output_slots().size();

  if (!registered_) {
    broker_->Register(this);
    registered_ = true;
  }
  base_pages_ = broker_->Grant(1);  // progress minimum, held until Close

  RQP_RETURN_IF_ERROR(RunBuildFromChild(ctx));
  RQP_RETURN_IF_ERROR(probe_child_->Open(ctx));
  // Late-materialized fused probe: requires a stable columnar probe child —
  // emission packs view references from several probe fetches into one
  // output batch, so the bases must outlive each fetch (decided after the
  // probe child's Open, which is where it resolves its own gate).
  columnar_ = vectorized_ && ctx->late_materialize() &&
              probe_child_->supports_columnar() &&
              probe_child_->stable_columnar_views();
  phase_ = Phase::kProbe;
  return Status::OK();
}

Status HashJoinOp::Next(RowBatch* out) {
  if (columnar_) {
    // Bridge: produce columnar, transpose once. NextColumnar counts the
    // produced rows; MaterializeInto only counts rows_materialized.
    RQP_RETURN_IF_ERROR(NextColumnar(&col_scratch_));
    out->Reset(slots_.size());
    col_scratch_.MaterializeInto(out, ctx_);
    return Status::OK();
  }
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  out->Reset(slots_.size());
  while (!out->full() && !done_) {
    switch (phase_) {
      case Phase::kProbe: {
        if (vectorized_) {
          // Everything per-row was precomputed at fetch time; emission is a
          // bare cursor over (probe row, build row) pairs, resumable when
          // the output batch fills mid-batch.
          if (fused_next_ >= fused_pairs_.size()) {
            RQP_RETURN_IF_ERROR(FetchProbeBatch());
            if (probe_batch_.empty()) {
              RQP_RETURN_IF_ERROR(FinishProbePhase());
            }
            continue;
          }
          while (fused_next_ < fused_pairs_.size() && !out->full()) {
            const auto& [pr, br] = fused_pairs_[fused_next_++];
            out->AppendConcat(probe_batch_.row(pr), probe_cols_,
                              parts_[probe_parts_[pr]].rows.row(br),
                              build_cols_);
          }
          continue;
        }
        if (match_next_ < match_rows_.size()) {
          out->AppendConcat(probe_batch_.row(probe_row_), probe_cols_,
                            parts_[match_part_].rows.row(
                                match_rows_[match_next_++]),
                            build_cols_);
          continue;
        }
        ++probe_row_;
        if (probe_batch_.empty() || probe_row_ >= probe_batch_.num_rows()) {
          RQP_RETURN_IF_ERROR(FetchProbeBatch());
          if (probe_batch_.empty()) {
            RQP_RETURN_IF_ERROR(FinishProbePhase());
            continue;
          }
        }
        const int64_t* row = probe_batch_.row(probe_row_);
        ctx_->ChargeHashOps(1);
        const size_t p = PartitionOf(row[probe_key_idx_]);
        Partition& part = parts_[p];
        match_rows_.clear();
        match_next_ = 0;
        if (part.spilled) {
          if (part.probe_spill == nullptr) {
            auto file = ctx_->spill()->Create(probe_cols_);
            if (!file.ok()) return file.status();
            part.probe_spill = std::move(file).value();
          }
          RQP_RETURN_IF_ERROR(part.probe_spill->AppendRow(row));
          continue;
        }
        match_part_ = p;
        part.table.ForEachMatch(part.rows, build_key_idx_,
                                row[probe_key_idx_],
                                [&](size_t r) { match_rows_.push_back(r); });
        continue;
      }
      case Phase::kTaskSetup:
        RQP_RETURN_IF_ERROR(SetupNextTask());
        continue;
      case Phase::kChunkLoad:
        RQP_RETURN_IF_ERROR(LoadNextChunk());
        continue;
      case Phase::kChunkProbe: {
        if (vectorized_) {
          if (fused_next_ >= fused_pairs_.size()) {
            RQP_RETURN_IF_ERROR(probe_file_->ReadBatch(&probe_batch_));
            probe_row_ = 0;
            if (probe_batch_.empty()) {
              phase_ = Phase::kChunkLoad;
              continue;
            }
            // Whole-batch fused probe against the resident chunk, exactly
            // like the partition probe path above.
            const size_t n = probe_batch_.num_rows();
            ctx_->ChargeHashOps(static_cast<int64_t>(n));
            fused_pairs_.clear();
            fused_next_ = 0;
            for (size_t i = 0; i < n; ++i) {
              chunk_table_.ForEachMatch(
                  chunk_, build_key_idx_,
                  probe_batch_.row(i)[probe_key_idx_], [&](size_t r) {
                    fused_pairs_.emplace_back(static_cast<uint32_t>(i),
                                              static_cast<uint32_t>(r));
                  });
            }
            continue;
          }
          while (fused_next_ < fused_pairs_.size() && !out->full()) {
            const auto& [pr, br] = fused_pairs_[fused_next_++];
            out->AppendConcat(probe_batch_.row(pr), probe_cols_,
                              chunk_.row(br), build_cols_);
          }
          continue;
        }
        if (match_next_ < match_rows_.size()) {
          out->AppendConcat(probe_batch_.row(probe_row_), probe_cols_,
                            chunk_.row(match_rows_[match_next_++]),
                            build_cols_);
          continue;
        }
        ++probe_row_;
        if (probe_batch_.empty() || probe_row_ >= probe_batch_.num_rows()) {
          RQP_RETURN_IF_ERROR(probe_file_->ReadBatch(&probe_batch_));
          probe_row_ = 0;
          if (probe_batch_.empty()) {
            phase_ = Phase::kChunkLoad;
            continue;
          }
        }
        const int64_t* row = probe_batch_.row(probe_row_);
        ctx_->ChargeHashOps(1);
        match_rows_.clear();
        match_next_ = 0;
        chunk_table_.ForEachMatch(chunk_, build_key_idx_,
                                  row[probe_key_idx_],
                                  [&](size_t r) { match_rows_.push_back(r); });
        continue;
      }
      case Phase::kDone:
        done_ = true;
        continue;
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

Status HashJoinOp::NextColumnar(ColumnBatch* out) {
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  out->Reset(slots_.size());
  // While emitting from the depth-0 fused probe, probe columns go out as
  // views plus a selection of absolute probe row ids (stable child bases, so
  // packing across probe fetches is safe) and only the gathered build
  // columns are owned. The spill-recursion and chunk phases emit owned flat
  // values — their probe rows come back from disk — and a mid-batch phase
  // transition demotes the in-flight views, so output batch boundaries match
  // the row-major path exactly.
  bool views_active = false;
  while (!out->full() && !done_) {
    switch (phase_) {
      case Phase::kProbe: {
        if (fused_next_ >= fused_pairs_.size()) {
          RQP_RETURN_IF_ERROR(FetchProbeBatch());
          const bool fetch_empty =
              probe_via_views_ ? probe_col_.empty() : probe_batch_.empty();
          if (fetch_empty) {
            RQP_RETURN_IF_ERROR(FinishProbePhase());
          }
          continue;
        }
        if (probe_via_views_) {
          if (!views_active && out->num_rows() == 0) {
            for (size_t c = 0; c < probe_cols_; ++c) {
              out->SetView(c, probe_col_.col(c).base);
            }
            out->UseSelection();
            views_active = true;
          }
          if (views_active) {
            // Bulk emission: consume exactly the pairs that fit (identical
            // batch boundaries to the per-row loop), append selection ids in
            // one pass with the probe batch's addressing mode hoisted, and
            // write the gathered build columns through raw pointers after a
            // single resize per column.
            const size_t take = std::min(fused_pairs_.size() - fused_next_,
                                         kBatchRows - out->num_rows());
            const auto* pairs = fused_pairs_.data() + fused_next_;
            std::vector<uint32_t>& sel = out->mutable_sel();
            sel.reserve(sel.size() + take);
            if (probe_col_.has_selection()) {
              const uint32_t* psel = probe_col_.sel().data();
              for (size_t j = 0; j < take; ++j) {
                sel.push_back(psel[pairs[j].first]);
              }
            } else {
              const int64_t pb = probe_col_.phys_begin();
              for (size_t j = 0; j < take; ++j) {
                sel.push_back(static_cast<uint32_t>(
                    pb + static_cast<int64_t>(pairs[j].first)));
              }
            }
            const size_t base_n = out->num_rows();
            dst_scratch_.resize(build_cols_);
            for (size_t c = 0; c < build_cols_; ++c) {
              auto& flat = out->col(probe_cols_ + c).flat;
              flat.resize(base_n + take);
              dst_scratch_[c] = flat.data() + base_n;
            }
            for (size_t j = 0; j < take; ++j) {
              const int64_t* brow =
                  parts_[probe_parts_[pairs[j].first]].rows.row(
                      pairs[j].second);
              for (size_t c = 0; c < build_cols_; ++c) {
                dst_scratch_[c][j] = brow[c];
              }
            }
            out->set_num_rows(base_n + take);
            fused_next_ += take;
            continue;
          }
          while (fused_next_ < fused_pairs_.size() && !out->full()) {
            const auto& [pr, br] = fused_pairs_[fused_next_++];
            const int64_t* brow = parts_[probe_parts_[pr]].rows.row(br);
            // Batch already carries flat rows (unreachable in practice —
            // view emission always precedes flat phases within a batch);
            // gather the probe values so the output stays well-formed.
            for (size_t c = 0; c < probe_cols_; ++c) {
              out->col(c).flat.push_back(probe_col_.Value(c, pr));
            }
            for (size_t c = 0; c < build_cols_; ++c) {
              out->col(probe_cols_ + c).flat.push_back(brow[c]);
            }
            out->set_num_rows(out->num_rows() + 1);
          }
          continue;
        }
        // Recursive-task probe rows come from the spill file: flat emission.
        if (views_active) {
          out->DemoteViewsToFlat();
          views_active = false;
        }
        while (fused_next_ < fused_pairs_.size() && !out->full()) {
          const auto& [pr, br] = fused_pairs_[fused_next_++];
          const int64_t* prow = probe_batch_.row(pr);
          const int64_t* brow = parts_[probe_parts_[pr]].rows.row(br);
          for (size_t c = 0; c < probe_cols_; ++c) {
            out->col(c).flat.push_back(prow[c]);
          }
          for (size_t c = 0; c < build_cols_; ++c) {
            out->col(probe_cols_ + c).flat.push_back(brow[c]);
          }
          out->set_num_rows(out->num_rows() + 1);
        }
        continue;
      }
      case Phase::kTaskSetup:
        RQP_RETURN_IF_ERROR(SetupNextTask());
        continue;
      case Phase::kChunkLoad:
        RQP_RETURN_IF_ERROR(LoadNextChunk());
        continue;
      case Phase::kChunkProbe: {
        if (fused_next_ >= fused_pairs_.size()) {
          RQP_RETURN_IF_ERROR(probe_file_->ReadBatch(&probe_batch_));
          probe_row_ = 0;
          if (probe_batch_.empty()) {
            phase_ = Phase::kChunkLoad;
            continue;
          }
          const size_t n = probe_batch_.num_rows();
          ctx_->ChargeHashOps(static_cast<int64_t>(n));
          fused_pairs_.clear();
          fused_next_ = 0;
          for (size_t i = 0; i < n; ++i) {
            chunk_table_.ForEachMatch(
                chunk_, build_key_idx_,
                probe_batch_.row(i)[probe_key_idx_], [&](size_t r) {
                  fused_pairs_.emplace_back(static_cast<uint32_t>(i),
                                            static_cast<uint32_t>(r));
                });
          }
          continue;
        }
        if (views_active) {
          out->DemoteViewsToFlat();
          views_active = false;
        }
        while (fused_next_ < fused_pairs_.size() && !out->full()) {
          const auto& [pr, br] = fused_pairs_[fused_next_++];
          const int64_t* prow = probe_batch_.row(pr);
          const int64_t* brow = chunk_.row(br);
          for (size_t c = 0; c < probe_cols_; ++c) {
            out->col(c).flat.push_back(prow[c]);
          }
          for (size_t c = 0; c < build_cols_; ++c) {
            out->col(probe_cols_ + c).flat.push_back(brow[c]);
          }
          out->set_num_rows(out->num_rows() + 1);
        }
        continue;
      }
      case Phase::kDone:
        done_ = true;
        continue;
    }
  }
  CountProducedRows(ctx_, static_cast<int64_t>(out->num_rows()),
                    /*eof=*/out->empty());
  return Status::OK();
}

void HashJoinOp::Close() {
  ReleaseAllMemory();
  if (registered_ && broker_ != nullptr) {
    broker_->Unregister(this);
    registered_ = false;
  }
  // All grants are released and the operator is unregistered: drop the
  // broker pointer so a broker that dies before this operator (a
  // stack-scoped ExecContext) is never touched from the destructor.
  broker_ = nullptr;
  parts_.clear();
  tasks_.clear();
  probe_file_.reset();
  fb_build_.reset();
  chunk_ = RowBuffer{};
  chunk_table_.clear();
  phase_ = Phase::kDone;
}

// ---- MergeJoinOp -----------------------------------------------------------

MergeJoinOp::MergeJoinOp(OperatorPtr left, OperatorPtr right,
                         std::string left_key_slot,
                         std::string right_key_slot)
    : left_child_(std::move(left)), right_child_(std::move(right)),
      left_key_(std::move(left_key_slot)),
      right_key_(std::move(right_key_slot)) {
  slots_ = ConcatSlots(left_child_->output_slots(),
                       right_child_->output_slots());
}

Status MergeJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  li_ = ri_ = 0;
  in_group_ = false;
  const int lk = FindSlot(left_child_->output_slots(), left_key_);
  const int rk = FindSlot(right_child_->output_slots(), right_key_);
  if (lk < 0 || rk < 0) {
    return Status::InvalidArgument("merge join key slot not found");
  }
  left_key_idx_ = static_cast<size_t>(lk);
  right_key_idx_ = static_cast<size_t>(rk);
  RQP_RETURN_IF_ERROR(MaterializeChild(left_child_.get(), ctx, &left_));
  RQP_RETURN_IF_ERROR(MaterializeChild(right_child_.get(), ctx, &right_));
  return Status::OK();
}

Status MergeJoinOp::Next(RowBatch* out) {
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  out->Reset(slots_.size());
  const size_t ln = left_.num_cols;
  while (!out->full()) {
    if (in_group_) {
      // Emit the cross product of the current equal-key group.
      if (group_r_ < group_r_end_) {
        out->AppendConcat(left_.row(group_l_), ln, right_.row(group_r_),
                          right_.num_cols);
        ++group_r_;
        continue;
      }
      // Next left row of the group (same key) restarts the right group.
      ++group_l_;
      if (group_l_ < left_.num_rows() &&
          left_.row(group_l_)[left_key_idx_] ==
              right_.row(ri_)[right_key_idx_]) {
        group_r_ = ri_;
        continue;
      }
      // Group exhausted.
      li_ = group_l_;
      ri_ = group_r_end_;
      in_group_ = false;
      continue;
    }
    if (li_ >= left_.num_rows() || ri_ >= right_.num_rows()) break;
    const int64_t lk = left_.row(li_)[left_key_idx_];
    const int64_t rk = right_.row(ri_)[right_key_idx_];
    ctx_->ChargeCompareOps(1);
    if (lk < rk) {
      ++li_;
    } else if (lk > rk) {
      ++ri_;
    } else {
      // Found an equal-key group: [ri_, group_r_end_) on the right.
      group_r_end_ = ri_;
      while (group_r_end_ < right_.num_rows() &&
             right_.row(group_r_end_)[right_key_idx_] == rk) {
        ++group_r_end_;
        ctx_->ChargeCompareOps(1);
      }
      group_l_ = li_;
      group_r_ = ri_;
      in_group_ = true;
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void MergeJoinOp::Close() {
  left_ = RowBuffer{};
  right_ = RowBuffer{};
}

// ---- NestedLoopsJoinOp -----------------------------------------------------

NestedLoopsJoinOp::NestedLoopsJoinOp(OperatorPtr left, OperatorPtr right,
                                     PredicatePtr join_predicate)
    : left_child_(std::move(left)), right_child_(std::move(right)),
      predicate_(std::move(join_predicate)) {
  slots_ = ConcatSlots(left_child_->output_slots(),
                       right_child_->output_slots());
}

Status NestedLoopsJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  done_ = false;
  left_row_ = 0;
  right_row_ = 0;
  left_batch_.Clear();
  if (predicate_ != nullptr) {
    auto compiled = CompiledPredicate::Compile(predicate_, slots_);
    if (!compiled.ok()) return compiled.status();
    compiled_ = std::move(compiled.value());
  }
  RQP_RETURN_IF_ERROR(MaterializeChild(right_child_.get(), ctx, &right_));
  RQP_RETURN_IF_ERROR(left_child_->Open(ctx));
  return Status::OK();
}

Status NestedLoopsJoinOp::Next(RowBatch* out) {
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  out->Reset(slots_.size());
  const size_t ln = left_child_->output_slots().size();
  std::vector<int64_t> joined(slots_.size());
  while (!out->full() && !done_) {
    if (left_batch_.empty() || left_row_ >= left_batch_.num_rows()) {
      RQP_RETURN_IF_ERROR(left_child_->Next(&left_batch_));
      if (left_batch_.empty()) { done_ = true; break; }
      left_row_ = 0;
      right_row_ = 0;
    }
    const int64_t* lrow = left_batch_.row(left_row_);
    while (right_row_ < right_.num_rows() && !out->full()) {
      const int64_t* rrow = right_.row(right_row_++);
      bool pass = true;
      if (compiled_) {
        std::copy(lrow, lrow + ln, joined.begin());
        std::copy(rrow, rrow + right_.num_cols,
                  joined.begin() + static_cast<long>(ln));
        ctx_->ChargePredicateEvals(1);
        pass = compiled_->Eval(joined.data());
      } else {
        ctx_->ChargeRowCpu(1);
      }
      if (pass) out->AppendConcat(lrow, ln, rrow, right_.num_cols);
    }
    if (right_row_ >= right_.num_rows()) {
      ++left_row_;
      right_row_ = 0;
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void NestedLoopsJoinOp::Close() { right_ = RowBuffer{}; }

// ---- IndexNLJoinOp ---------------------------------------------------------

IndexNLJoinOp::IndexNLJoinOp(OperatorPtr outer, const Table* inner,
                             const SortedIndex* inner_index,
                             std::string outer_key_slot)
    : outer_child_(std::move(outer)), inner_(inner), index_(inner_index),
      outer_key_(std::move(outer_key_slot)) {
  std::vector<std::string> inner_slots;
  for (size_t c = 0; c < inner_->schema().num_columns(); ++c) {
    inner_slots.push_back(inner_->name() + "." +
                          inner_->schema().column(c).name);
  }
  slots_ = ConcatSlots(outer_child_->output_slots(), inner_slots);
}

Status IndexNLJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  done_ = false;
  outer_row_ = 0;
  match_next_ = 0;
  inner_matches_.clear();
  outer_batch_.Clear();
  const int ok = FindSlot(outer_child_->output_slots(), outer_key_);
  if (ok < 0) {
    return Status::InvalidArgument("index NL join outer key slot not found: " +
                                   outer_key_);
  }
  outer_key_idx_ = static_cast<size_t>(ok);
  RQP_RETURN_IF_ERROR(outer_child_->Open(ctx));
  return Status::OK();
}

Status IndexNLJoinOp::Next(RowBatch* out) {
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  out->Reset(slots_.size());
  const size_t ln = outer_child_->output_slots().size();
  const size_t in_cols = inner_->schema().num_columns();
  std::vector<int64_t> inner_row(in_cols);
  while (!out->full() && !done_) {
    if (match_next_ < inner_matches_.size()) {
      const int64_t r = inner_matches_[match_next_++];
      // Random page fetch for the inner row.
      ctx_->ChargeRandomReads(1, inner_->name());
      for (size_t c = 0; c < in_cols; ++c) {
        inner_row[c] = inner_->Value(c, r);
      }
      out->AppendConcat(outer_batch_.row(outer_row_), ln, inner_row.data(),
                        in_cols);
      continue;
    }
    ++outer_row_;
    if (outer_batch_.empty() || outer_row_ >= outer_batch_.num_rows()) {
      RQP_RETURN_IF_ERROR(outer_child_->Next(&outer_batch_));
      if (outer_batch_.empty()) { done_ = true; break; }
      outer_row_ = 0;
    }
    const int64_t key = outer_batch_.row(outer_row_)[outer_key_idx_];
    inner_matches_.clear();
    match_next_ = 0;
    ctx_->ChargeIndexDescend();
    index_->LookupRange(key, key, &inner_matches_);
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void IndexNLJoinOp::Close() {}

// ---- GJoinOp ---------------------------------------------------------------

GJoinOp::GJoinOp(OperatorPtr left, OperatorPtr right,
                 std::string left_key_slot, std::string right_key_slot,
                 Hints hints)
    : left_child_(std::move(left)), right_child_(std::move(right)),
      left_key_(std::move(left_key_slot)),
      right_key_(std::move(right_key_slot)), hints_(hints) {
  slots_ = ConcatSlots(left_child_->output_slots(),
                       right_child_->output_slots());
}

Status GJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  spool_.clear();
  spool_next_ = 0;
  const int lk = FindSlot(left_child_->output_slots(), left_key_);
  const int rk = FindSlot(right_child_->output_slots(), right_key_);
  if (lk < 0 || rk < 0) {
    return Status::InvalidArgument("g-join key slot not found");
  }
  left_key_idx_ = static_cast<size_t>(lk);
  right_key_idx_ = static_cast<size_t>(rk);
  // The left (outer) input is always consumed first; its *actual* size then
  // drives the strategy choice — this is what makes the operator robust
  // against optimizer size-estimate mistakes.
  RQP_RETURN_IF_ERROR(MaterializeChild(left_child_.get(), ctx, &left_));

  const CostModel& cm = ctx->cost_model();
  const bool can_index =
      hints_.right_index != nullptr && hints_.right_table != nullptr;
  if (can_index) {
    // Probing the persistent index avoids reading the inner input at all;
    // compare against the cheapest alternative that must consume it.
    const double nl = static_cast<double>(left_.num_rows());
    const double nr = static_cast<double>(hints_.right_table->num_rows());
    const double index_cost =
        nl * (cm.index_descend + cm.random_page_read);
    const double consume_inner_cost =
        static_cast<double>(hints_.right_table->num_pages()) *
            cm.seq_page_read +
        (std::min(nl, nr) + nl + nr) * cm.hash_op;
    if (index_cost < consume_inner_cost) {
      right_.num_cols = right_child_->output_slots().size();
      return EmitAll();  // EmitAll sees an empty right_ and probes the index
    }
  }
  RQP_RETURN_IF_ERROR(MaterializeChild(right_child_.get(), ctx, &right_));
  return EmitAll();
}

Status GJoinOp::EmitAll() {
  const double nl = static_cast<double>(left_.num_rows());
  const double nr = static_cast<double>(right_.num_rows());
  const CostModel& cm = ctx_->cost_model();

  const bool index_mode = right_.data.empty() && hints_.right_index != nullptr &&
                          hints_.right_table != nullptr &&
                          hints_.right_table->num_rows() > 0;
  const bool can_merge =
      !index_mode && hints_.left_sorted && hints_.right_sorted;
  const double merge_cost = can_merge ? (nl + nr) * cm.compare_op : 1e300;
  const double hash_cost =
      index_mode ? 1e300 : (std::min(nl, nr) + nl + nr) * cm.hash_op;

  RowBatch batch(slots_.size());
  auto flush = [&]() {
    if (!batch.empty()) {
      spool_.push_back(std::move(batch));
      batch = RowBatch(slots_.size());
    }
  };
  const size_t right_cols = right_.num_cols;
  auto emit = [&](const int64_t* l, const int64_t* r) {
    batch.AppendConcat(l, left_.num_cols, r, right_cols);
    if (batch.full()) flush();
  };

  if (index_mode) {
    strategy_ = "index";
    std::vector<int64_t> matches;
    std::vector<int64_t> inner_row(right_cols);
    for (size_t a = 0; a < left_.num_rows(); ++a) {
      if ((a & (kBatchRows - 1)) == 0) {
        RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      }
      matches.clear();
      ctx_->ChargeIndexDescend();
      hints_.right_index->LookupRange(left_.row(a)[left_key_idx_],
                                      left_.row(a)[left_key_idx_], &matches);
      for (int64_t r : matches) {
        ctx_->ChargeRandomReads(1, hints_.right_table->name());
        for (size_t c = 0; c < right_cols; ++c) {
          inner_row[c] = hints_.right_table->Value(c, r);
        }
        emit(left_.row(a), inner_row.data());
      }
    }
    flush();
    return Status::OK();
  }

  if (can_merge && merge_cost <= hash_cost) {
    strategy_ = "merge";
    size_t li = 0, ri = 0;
    size_t steps = 0;
    while (li < left_.num_rows() && ri < right_.num_rows()) {
      if ((steps++ & (kBatchRows - 1)) == 0) {
        RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      }
      const int64_t lk = left_.row(li)[left_key_idx_];
      const int64_t rk = right_.row(ri)[right_key_idx_];
      ctx_->ChargeCompareOps(1);
      if (lk < rk) { ++li; continue; }
      if (lk > rk) { ++ri; continue; }
      size_t r_end = ri;
      while (r_end < right_.num_rows() &&
             right_.row(r_end)[right_key_idx_] == lk) {
        ++r_end;
      }
      size_t l_end = li;
      while (l_end < left_.num_rows() &&
             left_.row(l_end)[left_key_idx_] == lk) {
        ++l_end;
      }
      for (size_t a = li; a < l_end; ++a) {
        for (size_t b = ri; b < r_end; ++b) {
          emit(left_.row(a), right_.row(b));
        }
      }
      li = l_end;
      ri = r_end;
    }
  } else {
    // Hash with the build on the actually-smaller side.
    const bool build_left = left_.num_rows() <= right_.num_rows();
    strategy_ = build_left ? "hash(build=left)" : "hash(build=right)";
    const RowBuffer& build = build_left ? left_ : right_;
    const RowBuffer& probe = build_left ? right_ : left_;
    const size_t build_key = build_left ? left_key_idx_ : right_key_idx_;
    const size_t probe_key = build_left ? right_key_idx_ : left_key_idx_;
    const int64_t build_pages = std::max<int64_t>(1, build.num_pages());
    const int64_t granted = ctx_->memory()->Grant(build_pages);
    if (granted < build_pages) {
      const double f = 1.0 - static_cast<double>(granted) /
                                 static_cast<double>(build_pages);
      const int64_t spill = static_cast<int64_t>(
          std::ceil(f * static_cast<double>(build_pages + probe.num_pages())));
      ctx_->ChargeSpill(spill, spill);
    }
    JoinHashTable table;
    table.Build(build, build_key);
    ctx_->ChargeHashOps(static_cast<int64_t>(
        static_cast<double>(build.num_rows()) * cm.hash_build_factor));
    for (size_t p = 0; p < probe.num_rows(); ++p) {
      if ((p & (kBatchRows - 1)) == 0) {
        RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      }
      ctx_->ChargeHashOps(1);
      table.ForEachMatch(build, build_key, probe.row(p)[probe_key],
                         [&](size_t m) {
                           const int64_t* l =
                               build_left ? build.row(m) : probe.row(p);
                           const int64_t* r =
                               build_left ? probe.row(p) : build.row(m);
                           emit(l, r);
                         });
    }
    ctx_->memory()->Release(granted);
  }
  flush();
  return Status::OK();
}

Status GJoinOp::Next(RowBatch* out) {
  if (spool_next_ < spool_.size()) {
    *out = spool_[spool_next_++];
  } else {
    out->Reset(slots_.size());
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void GJoinOp::Close() {
  left_ = RowBuffer{};
  right_ = RowBuffer{};
  spool_.clear();
}

}  // namespace rqp
