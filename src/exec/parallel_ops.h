#ifndef RQP_EXEC_PARALLEL_OPS_H_
#define RQP_EXEC_PARALLEL_OPS_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/join_ops.h"
#include "exec/operator.h"
#include "exec/parallel.h"
#include "exec/sort_agg_ops.h"
#include "expr/pred_program.h"
#include "expr/predicate.h"
#include "storage/table.h"

namespace rqp {

/// Morsel-driven parallel pipeline with a gather exchange at the top.
///
/// GatherOp executes a right-deep scan → hash-join* → hash-agg? segment on N
/// workers and funnels the result back into the enclosing single-threaded
/// Volcano tree, so every non-parallel operator keeps working unchanged.
/// Phases:
///
///   1. Serial build: each join's build side is drained and its hash table
///      built on the coordinator (build sides are the *small* inputs by
///      optimizer construction). Residency is granted by the MemoryBroker;
///      if the grant falls short — tiny grants, mid-query capacity drops —
///      the operator *degrades to the serial spilling tree* (TableScanOp →
///      HashJoinOp → HashAggOp over the already-materialized build rows),
///      which completes at a 1-page grant with byte-identical output.
///   2. Parallel probe: the driving table is split into morsels handed out
///      by an atomic cursor; each worker scans, filters, probes the shared
///      read-only hash tables, and either emits into its morsel's private
///      output slot or folds rows into a thread-local partial-aggregate
///      map. Charges accumulate in thread-local counters flushed at morsel
///      boundaries; workers poll cancellation and memory revocation there
///      too (revocation sheds thread-local aggregate state into the shared
///      merged map — the build tables are pinned for the phase).
///   3. Barrier + gather: morsel outputs are concatenated in morsel-id
///      order (== table order, so the row stream is byte-identical to the
///      serial scan at every DOP); partial-aggregate maps are merged in
///      worker-id order (order-insensitive anyway: the aggregate functions
///      are commutative in exact int64 arithmetic) and emitted in key
///      order, exactly like HashAggOp.
///
/// The phase's total work lands on the cost clock; the deterministic
/// list-schedule makespan of the per-morsel costs is recorded through
/// RecordParallelPhase so simulated elapsed time reflects the overlap.
class GatherOp : public Operator, public MemoryRevocable {
 public:
  /// One hash join executed inside the parallel pipeline. The build child
  /// is a fully-built serial operator subtree; probe_key names a slot of
  /// the pipeline upstream of this join, build_key a build-child slot.
  struct JoinStage {
    OperatorPtr build_child;
    std::string probe_key;
    std::string build_key;
    int node_id = -1;
  };
  /// Optional aggregation at the top of the parallel pipeline.
  struct AggStage {
    std::vector<std::string> group_slots;
    std::vector<AggSpec> aggregates;
  };

  GatherOp(const Table* table, PredicatePtr filter, int scan_node_id,
           std::vector<JoinStage> stages, std::optional<AggStage> agg,
           ParallelOptions opts);
  ~GatherOp() override;

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return output_slots_;
  }
  std::string name() const override {
    return "Gather(" + table_->name() + ", dop=" +
           std::to_string(opts_.num_threads) + ")";
  }

  /// True when the memory grant forced the serial spilling fallback.
  bool degraded_to_serial() const { return delegate_ != nullptr; }

  /// MemoryRevocable: the build hash tables are pinned for the phase and
  /// worker-local aggregate state sheds itself at morsel boundaries, so the
  /// operator never sheds through this path. Registration exists for the
  /// broker-destroyed-first unwind (OnBrokerDestroyed) like every other
  /// grant-holding operator.
  int64_t ShedPages(int64_t) override { return 0; }
  void OnBrokerDestroyed() override {
    broker_ = nullptr;
    registered_ = false;
  }

 private:
  using GroupMap = std::map<std::vector<int64_t>, std::vector<int64_t>>;

  /// Run-time state of one join stage. After the build phase the hash table
  /// is strictly read-only — workers probe it without synchronization.
  /// Matches are stored in build-row order, matching HashJoinOp's
  /// JoinHashTable (which also yields matches in build-row order), so the
  /// serial and parallel probe outputs agree even on duplicate build keys.
  struct StageState {
    std::shared_ptr<std::vector<RowBatch>> build_batches;
    std::vector<std::string> build_slots;
    RowBuffer build_rows;
    std::unordered_map<int64_t, std::vector<uint32_t>> table;
    size_t probe_key_idx = 0;  ///< within the pipeline row prefix
    size_t build_key_idx = 0;
    size_t in_cols = 0;   ///< pipeline width upstream of this join
    size_t out_cols = 0;  ///< in_cols + build child width
  };

  Status MaterializeBuilds(ExecContext* ctx);
  Status BuildHashTables();
  Status BuildSerialFallback(ExecContext* ctx);
  Status ResolveAgg();
  Status RunParallelPhase(ExecContext* ctx);
  void WorkerLoop(int worker_id);
  Status ProcessMorsel(const Morsel& m, int worker_id, WorkerCharge* charge,
                       GroupMap* local_groups, std::vector<int64_t>* row,
                       std::vector<int64_t>* key,
                       std::vector<int64_t>* stage_counts,
                       std::vector<const int64_t*>* col_ptrs,
                       SelectionVector* sel);
  void EnsureLocalCapacity(int worker_id, const GroupMap& local,
                           WorkerCharge* charge);
  void ShedLocalGroups(int worker_id, GroupMap* local, WorkerCharge* charge);
  void MergeIntoShared(const GroupMap& local);
  void PublishActuals();
  void ReleaseAllMemory();

  // -- construction-time configuration --------------------------------------
  const Table* table_;
  PredicatePtr filter_;
  int scan_node_id_;
  std::vector<JoinStage> stages_;
  std::optional<AggStage> agg_;
  ParallelOptions opts_;

  // -- resolved at Open ------------------------------------------------------
  std::vector<std::string> pipeline_slots_;  ///< scan ⧺ build slots
  std::vector<std::string> output_slots_;    ///< pipeline or agg layout
  std::optional<CompiledPredicate> compiled_;
  /// Vectorized morsel filter (ctx->vectorized()): the scan predicate as
  /// flat bytecode run per morsel straight over the table's columns, so
  /// rejected rows are never transposed into the pipeline row.
  std::optional<PredicateProgram> program_;
  std::vector<StageState> stage_state_;
  std::vector<size_t> group_idx_, agg_idx_;  ///< against pipeline_slots_
  ExecContext* ctx_ = nullptr;
  MemoryBroker* broker_ = nullptr;
  bool registered_ = false;
  int64_t build_charged_pages_ = 0;
  int64_t merged_charged_pages_ = 0;
  OperatorPtr delegate_;  ///< serial spilling fallback (degraded mode)

  // -- parallel-phase state --------------------------------------------------
  std::unique_ptr<MorselCursor> cursor_;
  double phase_start_cost_ = 0;
  std::vector<double> ledger_;          ///< per-morsel cost, by morsel id
  std::vector<RowBuffer> morsel_out_;   ///< per-morsel output (no-agg mode)
  std::vector<GroupMap> worker_groups_;
  std::vector<int64_t> worker_pages_;
  std::atomic<int64_t> scan_produced_{0};
  /// Per-stage produced-row totals (parallel to stages_); shared across
  /// workers, reported to the node fuses at flush boundaries.
  std::unique_ptr<std::atomic<int64_t>[]> stage_produced_;
  std::mutex merged_mu_;  ///< guards merged_ during revocation shedding
  GroupMap merged_;
  std::mutex error_mu_;
  Status first_error_;

  // -- emission state --------------------------------------------------------
  size_t emit_morsel_ = 0;
  size_t emit_row_ = 0;
  GroupMap::const_iterator emit_it_;
  bool emitting_groups_ = false;
  bool actuals_published_ = false;
};

}  // namespace rqp

#endif  // RQP_EXEC_PARALLEL_OPS_H_
