#ifndef RQP_EXEC_OPERATOR_H_
#define RQP_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/column_batch.h"
#include "exec/context.h"
#include "util/status.h"

namespace rqp {

/// Volcano-style physical operator producing row batches.
///
/// Protocol: Open() once, then Next() until it returns an empty batch (EOF),
/// then Close(). Every operator counts the rows it produces; the engine
/// harvests these actual cardinalities (keyed by plan-node id) for the
/// paper's Metric1/Metric2 error metrics and for LEO feedback.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual Status Open(ExecContext* ctx) = 0;
  /// Fills `out` with up to kBatchRows rows; empty batch signals EOF.
  virtual Status Next(RowBatch* out) = 0;
  virtual void Close() {}

  /// Whether this operator can emit ColumnBatch views this execution.
  /// Decided at Open (late-materialization gate + operator preconditions);
  /// callers must only invoke NextColumnar when this returns true.
  virtual bool supports_columnar() const { return false; }
  /// Whether emitted view bases stay valid and unchanged across successive
  /// NextColumnar calls (they point into immutable table storage, not reused
  /// scratch). Consumers holding views across fetches require this.
  virtual bool stable_columnar_views() const { return false; }
  /// Columnar analogue of Next: fills `out` with column views/vectors; empty
  /// batch signals EOF. On the columnar path this is the counting primitive
  /// — the row-major Next of a columnar operator bridges through it, so the
  /// produced-row ledger is updated exactly once either way.
  virtual Status NextColumnar(ColumnBatch* out) {
    (void)out;
    return Status::Internal("operator '" + name() +
                            "' does not support columnar output");
  }

  /// Names of the output tuple slots (qualified "table.column").
  virtual const std::vector<std::string>& output_slots() const = 0;

  /// Rows produced so far (actual cardinality once EOF is reached).
  int64_t rows_produced() const { return rows_produced_; }

  /// Plan-node id this operator implements (-1 when standalone).
  int plan_node_id() const { return plan_node_id_; }
  void set_plan_node_id(int id) { plan_node_id_ = id; }

  /// Human-readable operator name for EXPLAIN output.
  virtual std::string name() const = 0;

 protected:
  /// Called by subclasses for every produced batch; updates the counter,
  /// feeds the node's cardinality fuse (if armed), and publishes the actual
  /// cardinality at EOF.
  void CountProduced(ExecContext* ctx, const RowBatch& batch, bool eof) {
    rows_produced_ += static_cast<int64_t>(batch.num_rows());
    if (ctx != nullptr && plan_node_id_ >= 0) {
      ctx->ObserveProduced(plan_node_id_, rows_produced_);
      if (eof) ctx->actual_cardinalities()[plan_node_id_] = rows_produced_;
    }
  }
  /// Row-count variant of CountProduced for columnar batches (and for the
  /// bridge in Next, which must not count the materialized copy again).
  void CountProducedRows(ExecContext* ctx, int64_t rows, bool eof) {
    rows_produced_ += rows;
    if (ctx != nullptr && plan_node_id_ >= 0) {
      ctx->ObserveProduced(plan_node_id_, rows_produced_);
      if (eof) ctx->actual_cardinalities()[plan_node_id_] = rows_produced_;
    }
  }
  void ResetCount() { rows_produced_ = 0; }

 private:
  int64_t rows_produced_ = 0;
  int plan_node_id_ = -1;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` (Open/Next*/Close), appending all batches to `out` (which
/// may be nullptr to just count). Returns total rows.
StatusOr<int64_t> DrainOperator(Operator* op, ExecContext* ctx,
                                std::vector<RowBatch>* out);

}  // namespace rqp

#endif  // RQP_EXEC_OPERATOR_H_
