#ifndef RQP_EXEC_FILTER_OPS_H_
#define RQP_EXEC_FILTER_OPS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/expr.h"
#include "expr/expr_program.h"
#include "expr/pred_program.h"
#include "expr/predicate.h"

namespace rqp {

/// Filters child rows by a predicate over qualified slot names.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, PredicatePtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override { child_->Close(); }
  bool supports_columnar() const override { return columnar_; }
  bool stable_columnar_views() const override { return columnar_; }
  Status NextColumnar(ColumnBatch* out) override;
  const std::vector<std::string>& output_slots() const override {
    return child_->output_slots();
  }
  std::string name() const override { return "Filter"; }

 private:
  OperatorPtr child_;
  PredicatePtr predicate_;
  std::optional<CompiledPredicate> compiled_;
  ExecContext* ctx_ = nullptr;
  // Vectorized path (ctx->vectorized()): the predicate as flat bytecode run
  // over the input batch viewed column-wise (stride = num_cols).
  bool vectorized_ = false;
  std::optional<PredicateProgram> program_;
  RowBatch in_;  ///< reused input batch — no per-Next allocation
  std::vector<const int64_t*> col_ptrs_;
  SelectionVector sel_;
  // Late-materialized path: the child's column views pass through untouched
  // and only the selection vector is refined — filtering never copies a row.
  bool columnar_ = false;
  ColumnBatch in_col_;       ///< reused columnar input
  ColumnBatch col_scratch_;  ///< bridge scratch for row-major Next
};

/// Projects/reorders child slots by qualified name.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<std::string> slots)
      : child_(std::move(child)), slots_(std::move(slots)) {}

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override { child_->Close(); }
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "Project"; }

 private:
  OperatorPtr child_;
  std::vector<std::string> slots_;
  std::vector<size_t> mapping_;
  ExecContext* ctx_ = nullptr;
};

/// Computes derived columns through the expression layer and appends them
/// to the child's slots. Each expression is constant-folded (FoldExpr) at
/// Open and compiled both to a scalar tree-walk (CompiledExpr) and — under
/// the vectorized gate — to the postfix ExprProgram VM, evaluated
/// column-at-a-time over the input batch. Division by zero is the sole
/// expression runtime error and carries identical fixed text in both modes;
/// the VM checks every divisor lane before dividing and CASE evaluates both
/// branches eagerly, so an error occurs in one mode iff in the other, and
/// the whole-batch eval charge is flushed before evaluation in BOTH modes
/// so the cost clock agrees even on the error path.
class MapOp : public Operator {
 public:
  MapOp(OperatorPtr child, std::vector<DerivedColumn> derived);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override { child_->Close(); }
  bool supports_columnar() const override { return columnar_; }
  // Derived columns are flat vectors owned by a scratch batch that is
  // rewritten every fetch, so Map output views are NOT stable across calls.
  bool stable_columnar_views() const override { return false; }
  Status NextColumnar(ColumnBatch* out) override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "Map"; }

 private:
  OperatorPtr child_;
  std::vector<DerivedColumn> derived_;
  std::vector<std::string> slots_;  ///< child slots + derived names
  std::vector<CompiledExpr> compiled_;
  ExecContext* ctx_ = nullptr;
  // Vectorized path: one VM program per derived column, run dense over the
  // batch (stride = num_cols); falls back to scalar if any compile fails.
  bool vectorized_ = false;
  std::vector<ExprProgram> programs_;
  ExprScratch scratch_;
  RowBatch in_;  ///< reused input batch — no per-Next allocation
  std::vector<const int64_t*> col_ptrs_;
  std::vector<std::vector<int64_t>> derived_vals_;
  // Late-materialized path: child views pass through, derived columns are
  // computed stride-free straight off the views into flat vectors — input
  // rows are never copied here.
  bool columnar_ = false;
  ColumnBatch in_col_;       ///< reused columnar input
  ColumnBatch col_scratch_;  ///< bridge scratch for row-major Next
};

/// Conjunctive filter with run-time predicate reordering — the A-Greedy /
/// eddies-lite adaptive selection ordering of §5.3 ("deferring optimization
/// decisions to execution"). In static mode the predicates run in the given
/// order; in adaptive mode observed pass rates (exponentially decayed, so
/// drifting data shifts the order) re-rank the evaluation order every
/// `reorder_interval` input rows. The work metric is
/// ExecCounters::predicate_evals.
class AdaptiveFilterOp : public Operator {
 public:
  struct Options {
    bool adaptive = true;
    int64_t reorder_interval = 512;
    double decay = 0.98;  ///< per-interval decay of historical pass rates
  };

  AdaptiveFilterOp(OperatorPtr child, std::vector<PredicatePtr> predicates,
                   Options options)
      : child_(std::move(child)), predicates_(std::move(predicates)),
        options_(options) {}

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override { child_->Close(); }
  const std::vector<std::string>& output_slots() const override {
    return child_->output_slots();
  }
  std::string name() const override {
    return options_.adaptive ? "AdaptiveFilter" : "StaticFilter";
  }

  /// Current evaluation order (for tests/EXPLAIN).
  const std::vector<size_t>& evaluation_order() const { return order_; }

 private:
  void MaybeReorder();

  OperatorPtr child_;
  std::vector<PredicatePtr> predicates_;
  Options options_;
  std::vector<CompiledPredicate> compiled_;
  std::vector<size_t> order_;
  std::vector<double> evals_;   // decayed evaluation counts per predicate
  std::vector<double> passes_;  // decayed pass counts per predicate
  int64_t rows_since_reorder_ = 0;
  ExecContext* ctx_ = nullptr;
  RowBatch in_;  ///< reused input batch — no per-Next allocation
};

}  // namespace rqp

#endif  // RQP_EXEC_FILTER_OPS_H_
