#ifndef RQP_EXEC_SCAN_OPS_H_
#define RQP_EXEC_SCAN_OPS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/pred_program.h"
#include "expr/predicate.h"
#include "storage/table.h"

namespace rqp {

/// Sequential scan with optional inline filter and column projection.
/// Charges one sequential page read per kRowsPerPage source rows.
class TableScanOp : public Operator {
 public:
  /// `projection` lists column names of `table` to emit (empty = all).
  /// `filter` (if set) references unqualified column names of `table`.
  TableScanOp(const Table* table, PredicatePtr filter = nullptr,
              std::vector<std::string> projection = {});

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  bool supports_columnar() const override { return columnar_; }
  // Views point into the table's immutable column storage — the same bases
  // on every fetch — so consumers may hold them across batches.
  bool stable_columnar_views() const override { return columnar_; }
  Status NextColumnar(ColumnBatch* out) override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "TableScan(" + table_->name() + ")"; }

 private:
  Status NextVectorized(RowBatch* out);

  const Table* table_;
  PredicatePtr filter_;
  std::vector<size_t> columns_;       // projected source column indices
  std::vector<std::string> slots_;    // qualified output names
  std::optional<CompiledPredicate> compiled_;
  ExecContext* ctx_ = nullptr;
  int64_t next_row_ = 0;
  int64_t charged_end_ = 0;  ///< source rows already charged (chunk-aligned)
  bool projection_error_ = false;
  // Vectorized path (ctx->vectorized()): the filter compiled to flat
  // bytecode, evaluated column-at-a-time straight over Table::column()
  // storage — rejected rows are never transposed.
  bool vectorized_ = false;
  std::optional<PredicateProgram> program_;
  std::vector<const int64_t*> chunk_cols_;  ///< per-chunk column base ptrs
  SelectionVector sel_;    ///< surviving rows of the current chunk
  size_t sel_pos_ = 0;     ///< next unconsumed selection entry
  int64_t sel_base_ = 0;   ///< source row of selection index 0
  // Late-materialized path (ctx->late_materialize()): batches are column
  // views over Table::column() storage — survivors are never transposed
  // here. Row-major Next bridges through NextColumnar + MaterializeInto.
  bool columnar_ = false;
  ColumnBatch col_scratch_;  ///< bridge scratch — no per-Next allocation
};

/// Index range scan: descends a sorted index, fetches qualifying rows by
/// row id (charged as random page reads — the unclustered worst case), and
/// applies an optional residual filter. The cost crossover against
/// TableScanOp is the plan-switch cliff studied in the smoothness experiment.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const Table* table, const SortedIndex* index, int64_t lo,
              int64_t hi, PredicatePtr residual_filter = nullptr,
              std::vector<std::string> projection = {});

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override {
    return "IndexScan(" + index_->name() + ")";
  }

 private:
  const Table* table_;
  const SortedIndex* index_;
  int64_t lo_, hi_;
  PredicatePtr filter_;
  std::vector<size_t> columns_;
  std::vector<std::string> slots_;
  std::optional<CompiledPredicate> compiled_;
  ExecContext* ctx_ = nullptr;
  std::vector<int64_t> row_ids_;
  size_t next_ = 0;
  bool projection_error_ = false;
};

/// Replays previously materialized batches (re-optimization restart source,
/// join build-side reuse, tests).
class VectorSourceOp : public Operator {
 public:
  VectorSourceOp(std::shared_ptr<std::vector<RowBatch>> batches,
                 std::vector<std::string> slots)
      : batches_(std::move(batches)), slots_(std::move(slots)) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    next_ = 0;
    ResetCount();
    return Status::OK();
  }
  Status Next(RowBatch* out) override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "VectorSource"; }

 private:
  std::shared_ptr<std::vector<RowBatch>> batches_;
  std::vector<std::string> slots_;
  ExecContext* ctx_ = nullptr;
  size_t next_ = 0;
};

/// Shared plumbing: resolves a projection list to column indices and
/// qualified slot names. Empty projection selects all columns.
Status ResolveProjection(const Table& table,
                         const std::vector<std::string>& projection,
                         std::vector<size_t>* columns,
                         std::vector<std::string>* slots);

}  // namespace rqp

#endif  // RQP_EXEC_SCAN_OPS_H_
