#include "exec/scan_ops.h"

#include <algorithm>

namespace rqp {

Status ResolveProjection(const Table& table,
                         const std::vector<std::string>& projection,
                         std::vector<size_t>* columns,
                         std::vector<std::string>* slots) {
  columns->clear();
  slots->clear();
  if (projection.empty()) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      columns->push_back(c);
      slots->push_back(table.name() + "." + table.schema().column(c).name);
    }
    return Status::OK();
  }
  for (const auto& name : projection) {
    auto idx = table.ColumnIndex(name);
    if (!idx.ok()) return idx.status();
    columns->push_back(idx.value());
    slots->push_back(table.name() + "." + name);
  }
  return Status::OK();
}

TableScanOp::TableScanOp(const Table* table, PredicatePtr filter,
                         std::vector<std::string> projection)
    : table_(table), filter_(std::move(filter)) {
  Status s = ResolveProjection(*table_, projection, &columns_, &slots_);
  (void)s;  // projection errors surface in Open
  projection_error_ = !s.ok();
}

Status TableScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  next_row_ = 0;
  charged_end_ = 0;
  sel_.clear();
  sel_pos_ = 0;
  sel_base_ = 0;
  program_.reset();
  vectorized_ = ctx->vectorized();
  columnar_ = false;
  ResetCount();
  if (projection_error_) {
    return Status::InvalidArgument("bad projection for table " +
                                   table_->name());
  }
  if (filter_ != nullptr) {
    // The filter references unqualified column names; compile it against
    // the *full* table layout so residual columns outside the projection
    // still resolve.
    std::vector<std::string> all;
    for (size_t c = 0; c < table_->schema().num_columns(); ++c) {
      all.push_back(table_->schema().column(c).name);
    }
    auto compiled = CompiledPredicate::Compile(filter_, all);
    if (!compiled.ok()) return compiled.status();
    compiled_ = std::move(compiled.value());
    if (vectorized_) {
      // Predicates the bytecode compiler can't flatten (unbound parameters)
      // fall back to the scalar path rather than failing the query.
      auto program = PredicateProgram::Compile(filter_, all);
      if (program.ok()) {
        program_ = std::move(program.value());
        chunk_cols_.resize(all.size());
      } else {
        vectorized_ = false;
      }
    }
  }
  // Without a filter program_ stays null and NextVectorized takes the dense
  // block-copy path: every chunk row survives, so the transpose streams each
  // column contiguously with no selection vector at all. That beats the
  // scalar per-row Value()/AppendRow loop by a wide margin and is what keeps
  // the unfiltered probe side of a hash join fed at memory speed.
  //
  // Under the late-materialization gate the scan goes one step further:
  // batches become column views over Table::column() storage (dense range or
  // absolute selection vector) and the transpose moves to whichever consumer
  // actually needs rows — often nowhere at all.
  columnar_ = vectorized_ && ctx->late_materialize();
  return Status::OK();
}

Status TableScanOp::Next(RowBatch* out) {
  if (columnar_) {
    // Bridge: the columnar primitive produces (and counts) the batch; the
    // materialization here is the single conversion point for row-major
    // consumers and reproduces NextVectorized's batches byte for byte.
    RQP_RETURN_IF_ERROR(NextColumnar(&col_scratch_));
    out->Reset(slots_.size());
    col_scratch_.MaterializeInto(out, ctx_);
    return Status::OK();
  }
  if (vectorized_) return NextVectorized(out);
  out->Reset(slots_.size());
  const int64_t n = table_->num_rows();
  std::vector<int64_t> full_row(table_->schema().num_columns());
  std::vector<int64_t> proj_row(columns_.size());
  while (next_row_ < n && out->capacity_remaining() > 0) {
    if (next_row_ >= charged_end_) {
      RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      // Charge the whole chunk up front (sequential I/O plus per-row CPU);
      // chunk boundaries stay aligned to kBatchRows source rows no matter
      // where the output batch filled up, so the charge totals and the
      // fault-injection cadence are independent of filter selectivity.
      const int64_t chunk_end =
          std::min(n, charged_end_ + static_cast<int64_t>(kBatchRows));
      const int64_t chunk = chunk_end - charged_end_;
      RQP_RETURN_IF_ERROR(ctx_->MaybeInjectReadFault(table_->name()));
      ctx_->ChargeSeqPages((chunk + kRowsPerPage - 1) / kRowsPerPage,
                           table_->name());
      ctx_->ChargeRowCpu(chunk);
      charged_end_ = chunk_end;
    }
    int64_t r = next_row_;
    for (; r < charged_end_ && out->capacity_remaining() > 0; ++r) {
      if (compiled_) {
        for (size_t c = 0; c < full_row.size(); ++c) {
          full_row[c] = table_->Value(c, r);
        }
        ctx_->ChargePredicateEvals(1);
        if (!compiled_->Eval(full_row.data())) continue;
      }
      for (size_t c = 0; c < columns_.size(); ++c) {
        proj_row[c] = table_->Value(columns_[c], r);
      }
      out->AppendRow(proj_row);
    }
    next_row_ = r;
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

// Vectorized scan: per source chunk of kBatchRows rows, the filter bytecode
// builds a selection vector straight over the table's column storage (stride
// 1, zero-copy) and only surviving rows are transposed into the output. The
// charge block mirrors the scalar path exactly — guardrail check, fault
// draw, sequential pages, per-row CPU — followed by the chunk's predicate
// evals in one flush. In the scalar path all of a chunk's per-row eval
// charges also land before the next chunk's charge block, so the cost clock
// agrees at every fault-draw and guardrail point and the output is
// byte-identical (DESIGN.md §10).
// Scans of up to this many projected columns transpose through a
// stack-resident pointer array; wider scans fall back to a heap vector.
constexpr size_t kMaxDenseCols = 16;

Status TableScanOp::NextVectorized(RowBatch* out) {
  out->Reset(slots_.size());
  const int64_t n = table_->num_rows();
  const size_t ncols = columns_.size();
  while (out->capacity_remaining() > 0) {
    if (sel_pos_ >= sel_.size()) {
      if (next_row_ >= n) break;
      RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      const int64_t chunk_end =
          std::min(n, next_row_ + static_cast<int64_t>(kBatchRows));
      const int64_t chunk = chunk_end - next_row_;
      RQP_RETURN_IF_ERROR(ctx_->MaybeInjectReadFault(table_->name()));
      ctx_->ChargeSeqPages((chunk + kRowsPerPage - 1) / kRowsPerPage,
                           table_->name());
      ctx_->ChargeRowCpu(chunk);
      if (!program_.has_value()) {
        // Dense path (no filter): the whole chunk survives. Transpose in
        // row-major write order — the destination stream is sequential and
        // each source column is a sequential read stream — with no selection
        // vector and no per-row predicate charges (the scalar path charges
        // none for an unfiltered scan either).
        const size_t take = static_cast<size_t>(chunk);
        std::vector<int64_t>& data = out->mutable_data();
        const size_t base = data.size();
        data.resize(base + take * ncols);
        const int64_t* srcs[kMaxDenseCols];
        const int64_t** col_ptrs = srcs;
        std::vector<const int64_t*> wide;
        if (ncols > kMaxDenseCols) {
          wide.resize(ncols);
          col_ptrs = wide.data();
        }
        for (size_t c = 0; c < ncols; ++c) {
          col_ptrs[c] = table_->column(columns_[c]).data() + next_row_;
        }
        int64_t* dst = data.data() + base;
        for (size_t i = 0; i < take; ++i) {
          for (size_t c = 0; c < ncols; ++c) *dst++ = col_ptrs[c][i];
        }
        next_row_ = chunk_end;
        continue;
      }
      ctx_->ChargePredicateEvals(chunk);
      for (size_t c = 0; c < chunk_cols_.size(); ++c) {
        chunk_cols_[c] = table_->column(c).data() + next_row_;
      }
      program_->BuildSelection(chunk_cols_.data(), /*stride=*/1,
                               static_cast<size_t>(chunk), &sel_,
                               ctx_->simd());
      sel_base_ = next_row_;
      sel_pos_ = 0;
      next_row_ = chunk_end;
    }
    const size_t take =
        std::min(sel_.size() - sel_pos_, out->capacity_remaining());
    // Column-at-a-time gather of the survivors, writing straight into the
    // batch storage: one resize, then strided stores from each source
    // column — no per-row Value() calls or AppendRow bookkeeping.
    std::vector<int64_t>& data = out->mutable_data();
    const size_t base = data.size();
    data.resize(base + take * ncols);
    const uint32_t* sel = sel_.data() + sel_pos_;
    for (size_t c = 0; c < ncols; ++c) {
      const int64_t* src = table_->column(columns_[c]).data() + sel_base_;
      int64_t* dst = data.data() + base + c;
      for (size_t i = 0; i < take; ++i) dst[i * ncols] = src[sel[i]];
    }
    sel_pos_ += take;
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

// Columnar scan: same chunk cadence and charge blocks as NextVectorized —
// guardrail check, fault draw, sequential pages, per-row CPU, then the
// chunk's predicate evals — but survivors are *described*, not copied: the
// dense path emits one chunk as a view range and the filtered path packs
// absolute surviving row ids into the batch's selection vector, both over
// zero-copy bases into Table::column() storage. Batch boundaries match the
// row-major vectorized path exactly (one chunk per dense batch; filtered
// batches pack to kBatchRows), so the bridge in Next and every charge point
// stay byte-identical (DESIGN.md §15).
Status TableScanOp::NextColumnar(ColumnBatch* out) {
  out->Reset(slots_.size());
  out->set_stable_views(true);
  const int64_t n = table_->num_rows();
  const size_t ncols = columns_.size();
  for (size_t c = 0; c < ncols; ++c) {
    out->SetView(c, table_->column(columns_[c]).data());
  }
  if (!program_.has_value()) {
    // Dense path (no filter): one chunk per batch, zero copies.
    if (next_row_ < n) {
      RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      const int64_t chunk_end =
          std::min(n, next_row_ + static_cast<int64_t>(kBatchRows));
      const int64_t chunk = chunk_end - next_row_;
      RQP_RETURN_IF_ERROR(ctx_->MaybeInjectReadFault(table_->name()));
      ctx_->ChargeSeqPages((chunk + kRowsPerPage - 1) / kRowsPerPage,
                           table_->name());
      ctx_->ChargeRowCpu(chunk);
      out->SetDense(next_row_, static_cast<size_t>(chunk));
      next_row_ = chunk_end;
    }
    CountProducedRows(ctx_, static_cast<int64_t>(out->num_rows()),
                      /*eof=*/out->empty());
    return Status::OK();
  }
  out->UseSelection();
  std::vector<uint32_t>& osel = out->mutable_sel();
  while (out->num_rows() < kBatchRows) {
    if (sel_pos_ >= sel_.size()) {
      if (next_row_ >= n) break;
      RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      const int64_t chunk_end =
          std::min(n, next_row_ + static_cast<int64_t>(kBatchRows));
      const int64_t chunk = chunk_end - next_row_;
      RQP_RETURN_IF_ERROR(ctx_->MaybeInjectReadFault(table_->name()));
      ctx_->ChargeSeqPages((chunk + kRowsPerPage - 1) / kRowsPerPage,
                           table_->name());
      ctx_->ChargeRowCpu(chunk);
      ctx_->ChargePredicateEvals(chunk);
      for (size_t c = 0; c < chunk_cols_.size(); ++c) {
        chunk_cols_[c] = table_->column(c).data() + next_row_;
      }
      program_->BuildSelection(chunk_cols_.data(), /*stride=*/1,
                               static_cast<size_t>(chunk), &sel_,
                               ctx_->simd());
      sel_base_ = next_row_;
      sel_pos_ = 0;
      next_row_ = chunk_end;
    }
    const size_t take =
        std::min(sel_.size() - sel_pos_, kBatchRows - out->num_rows());
    // Survivors are appended as absolute row ids — no gather, no transpose.
    const uint32_t* sel = sel_.data() + sel_pos_;
    const uint32_t base = static_cast<uint32_t>(sel_base_);
    for (size_t i = 0; i < take; ++i) osel.push_back(base + sel[i]);
    out->set_num_rows(out->num_rows() + take);
    sel_pos_ += take;
  }
  CountProducedRows(ctx_, static_cast<int64_t>(out->num_rows()),
                    /*eof=*/out->empty());
  return Status::OK();
}

void TableScanOp::Close() {}

IndexScanOp::IndexScanOp(const Table* table, const SortedIndex* index,
                         int64_t lo, int64_t hi, PredicatePtr residual_filter,
                         std::vector<std::string> projection)
    : table_(table), index_(index), lo_(lo), hi_(hi),
      filter_(std::move(residual_filter)) {
  Status s = ResolveProjection(*table_, projection, &columns_, &slots_);
  projection_error_ = !s.ok();
}

Status IndexScanOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  next_ = 0;
  row_ids_.clear();
  ResetCount();
  if (projection_error_) {
    return Status::InvalidArgument("bad projection for table " +
                                   table_->name());
  }
  if (filter_ != nullptr) {
    std::vector<std::string> all;
    for (size_t c = 0; c < table_->schema().num_columns(); ++c) {
      all.push_back(table_->schema().column(c).name);
    }
    auto compiled = CompiledPredicate::Compile(filter_, all);
    if (!compiled.ok()) return compiled.status();
    compiled_ = std::move(compiled.value());
  }
  ctx_->ChargeIndexDescend();
  RQP_RETURN_IF_ERROR(ctx_->MaybeInjectReadFault(table_->name()));
  const int64_t matches = index_->LookupRange(lo_, hi_, &row_ids_);
  // Index leaf pages are read sequentially.
  ctx_->ChargeSeqPages((matches + kRowsPerPage - 1) / kRowsPerPage,
                       table_->name());
  return Status::OK();
}

Status IndexScanOp::Next(RowBatch* out) {
  out->Reset(slots_.size());
  std::vector<int64_t> full_row(table_->schema().num_columns());
  std::vector<int64_t> proj_row(columns_.size());
  RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
  while (next_ < row_ids_.size() && !out->full()) {
    const int64_t r = row_ids_[next_++];
    // Each qualifying row costs one random page fetch (unclustered index).
    ctx_->ChargeRandomReads(1, table_->name());
    ctx_->ChargeRowCpu(1);
    if (compiled_) {
      for (size_t c = 0; c < full_row.size(); ++c) {
        full_row[c] = table_->Value(c, r);
      }
      ctx_->ChargePredicateEvals(1);
      if (!compiled_->Eval(full_row.data())) continue;
    }
    for (size_t c = 0; c < columns_.size(); ++c) {
      proj_row[c] = table_->Value(columns_[c], r);
    }
    out->AppendRow(proj_row);
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void IndexScanOp::Close() {}

Status VectorSourceOp::Next(RowBatch* out) {
  if (next_ < batches_->size()) {
    *out = (*batches_)[next_++];
    ctx_->ChargeRowCpu(static_cast<int64_t>(out->num_rows()));
  } else {
    out->Reset(slots_.size());
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

StatusOr<int64_t> DrainOperator(Operator* op, ExecContext* ctx,
                                std::vector<RowBatch>* out) {
  RQP_RETURN_IF_ERROR(op->Open(ctx));
  int64_t total = 0;
  if (out == nullptr && op->supports_columnar()) {
    // Count-only drain of a columnar root: consume the views directly and
    // skip the row-major conversion entirely — the pipeline's final
    // transpose is elided, not merely deferred. Charge points (inside
    // NextColumnar) and the guardrail cadence match the row path exactly.
    ColumnBatch batch;
    while (true) {
      RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
      RQP_RETURN_IF_ERROR(op->NextColumnar(&batch));
      if (batch.empty()) break;
      total += static_cast<int64_t>(batch.num_rows());
      ctx->counters().transposes_elided += static_cast<int64_t>(batch.num_rows());
    }
    op->Close();
    return total;
  }
  while (true) {
    RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
    RowBatch batch;
    RQP_RETURN_IF_ERROR(op->Next(&batch));
    if (batch.empty()) break;
    total += static_cast<int64_t>(batch.num_rows());
    if (out != nullptr) out->push_back(std::move(batch));
  }
  op->Close();
  return total;
}

}  // namespace rqp
