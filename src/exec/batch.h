#ifndef RQP_EXEC_BATCH_H_
#define RQP_EXEC_BATCH_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace rqp {

/// Number of rows per executor batch.
inline constexpr size_t kBatchRows = 1024;

/// A batch of fixed-width rows (row-major int64 cells). The unit of data
/// flow between executor operators.
class RowBatch {
 public:
  RowBatch() = default;
  explicit RowBatch(size_t num_cols) : num_cols_(num_cols) {}

  size_t num_cols() const { return num_cols_; }
  size_t num_rows() const {
    return num_cols_ == 0 ? 0 : data_.size() / num_cols_;
  }
  bool empty() const { return data_.empty(); }
  bool full() const { return num_rows() >= kBatchRows; }
  /// Rows that can still be appended before the batch reaches kBatchRows.
  /// full() uses >= because internal paths (spill re-reads, materialized
  /// replays) may carry oversized batches; producers appending row ranges
  /// must bound them with this so a batch never overfills.
  size_t capacity_remaining() const {
    const size_t n = num_rows();
    return n >= kBatchRows ? 0 : kBatchRows - n;
  }

  const int64_t* row(size_t i) const {
    assert(i < num_rows());
    return data_.data() + i * num_cols_;
  }

  void AppendRow(const int64_t* values) {
    data_.insert(data_.end(), values, values + num_cols_);
  }
  void AppendRow(const std::vector<int64_t>& values) {
    assert(values.size() == num_cols_);
    AppendRow(values.data());
  }
  /// Appends the concatenation of two partial rows (join output).
  void AppendConcat(const int64_t* left, size_t left_n, const int64_t* right,
                    size_t right_n) {
    assert(left_n + right_n == num_cols_);
    data_.insert(data_.end(), left, left + left_n);
    data_.insert(data_.end(), right, right + right_n);
  }

  void Clear() { data_.clear(); }
  void Reset(size_t num_cols) {
    num_cols_ = num_cols;
    data_.clear();
    // Reserve a full batch up front so the hot append loops (AppendRow /
    // AppendConcat) never reallocate mid-batch. clear() keeps capacity, so
    // after the first batch through an operator this is a no-op.
    if (num_cols_ > 0) data_.reserve(num_cols_ * kBatchRows);
  }

  std::vector<int64_t>& mutable_data() { return data_; }
  const std::vector<int64_t>& data() const { return data_; }

 private:
  size_t num_cols_ = 0;
  std::vector<int64_t> data_;
};

}  // namespace rqp

#endif  // RQP_EXEC_BATCH_H_
