#include "exec/sort_agg_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace rqp {
namespace {
int FindSlotIdx(const std::vector<std::string>& slots,
                const std::string& name) {
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == name) return static_cast<int>(i);
  }
  return -1;
}
}  // namespace

// ---- SortOp ----------------------------------------------------------------

SortOp::SortOp(OperatorPtr child, std::string key_slot, Options options)
    : child_(std::move(child)), key_(std::move(key_slot)), options_(options) {}

Status SortOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  next_ = 0;
  external_passes_ = 0;
  const int k = FindSlotIdx(child_->output_slots(), key_);
  if (k < 0) return Status::InvalidArgument("sort key slot not found: " + key_);
  key_idx_ = static_cast<size_t>(k);
  RQP_RETURN_IF_ERROR(MaterializeChild(child_.get(), ctx, &rows_));

  const int64_t n = static_cast<int64_t>(rows_.num_rows());
  const int64_t pages = std::max<int64_t>(1, rows_.num_pages());

  // In-memory sort work: n log2 n comparisons.
  if (n > 1) {
    ctx->ChargeCompareOps(static_cast<int64_t>(
        static_cast<double>(n) * std::log2(static_cast<double>(n))));
  }
  order_.resize(static_cast<size_t>(n));
  std::iota(order_.begin(), order_.end(), 0);
  std::stable_sort(order_.begin(), order_.end(),
                   [this](size_t a, size_t b) {
                     return rows_.row(a)[key_idx_] < rows_.row(b)[key_idx_];
                   });

  // External merge passes: initial run size = memory grant; each pass
  // multiplies the run size by the merge fan-in and re-reads + re-writes
  // every page once. With dynamic memory the grant is renegotiated before
  // each pass, so a capacity change mid-sort takes effect immediately.
  int64_t grant = ctx->memory()->Grant(pages);
  int64_t run_pages = std::max<int64_t>(1, grant);
  while (run_pages < pages) {
    ++external_passes_;
    ctx->ChargeSpill(pages, pages);
    run_pages *= options_.merge_fanin;
    if (options_.dynamic_memory) {
      ctx->memory()->Release(grant);
      grant = ctx->memory()->Grant(pages);
      run_pages = std::max(run_pages, grant);
    }
  }
  ctx->memory()->Release(grant);
  return Status::OK();
}

Status SortOp::Next(RowBatch* out) {
  out->Reset(output_slots().size());
  while (next_ < order_.size() && !out->full()) {
    out->AppendRow(rows_.row(order_[next_++]));
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(out->num_rows()));
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void SortOp::Close() {
  rows_ = RowBuffer{};
  order_.clear();
}

// ---- HashAggOp -------------------------------------------------------------

HashAggOp::HashAggOp(OperatorPtr child, std::vector<std::string> group_slots,
                     std::vector<AggSpec> aggregates)
    : child_(std::move(child)), group_slots_(std::move(group_slots)),
      aggs_(std::move(aggregates)) {
  slots_ = group_slots_;
  for (const auto& a : aggs_) slots_.push_back(a.output_name);
}

Status HashAggOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  groups_.clear();
  emitting_ = false;
  group_idx_.clear();
  agg_idx_.clear();
  const auto& in_slots = child_->output_slots();
  for (const auto& g : group_slots_) {
    const int i = FindSlotIdx(in_slots, g);
    if (i < 0) return Status::InvalidArgument("group slot not found: " + g);
    group_idx_.push_back(static_cast<size_t>(i));
  }
  for (const auto& a : aggs_) {
    if (a.fn == AggFn::kCount) {
      agg_idx_.push_back(0);  // unused
      continue;
    }
    const int i = FindSlotIdx(in_slots, a.slot);
    if (i < 0) return Status::InvalidArgument("agg slot not found: " + a.slot);
    agg_idx_.push_back(static_cast<size_t>(i));
  }

  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  std::vector<int64_t> key(group_idx_.size());
  while (true) {
    RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
    RowBatch in;
    RQP_RETURN_IF_ERROR(child_->Next(&in));
    if (in.empty()) break;
    for (size_t r = 0; r < in.num_rows(); ++r) {
      const int64_t* row = in.row(r);
      for (size_t g = 0; g < group_idx_.size(); ++g) {
        key[g] = row[group_idx_[g]];
      }
      ctx->ChargeHashOps(1);
      auto [it, inserted] = groups_.try_emplace(key);
      if (inserted) {
        it->second.resize(aggs_.size());
        for (size_t a = 0; a < aggs_.size(); ++a) {
          switch (aggs_[a].fn) {
            case AggFn::kCount: it->second[a] = 0; break;
            case AggFn::kSum: it->second[a] = 0; break;
            case AggFn::kMin:
              it->second[a] = std::numeric_limits<int64_t>::max();
              break;
            case AggFn::kMax:
              it->second[a] = std::numeric_limits<int64_t>::min();
              break;
          }
        }
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        int64_t& acc = it->second[a];
        switch (aggs_[a].fn) {
          case AggFn::kCount: ++acc; break;
          case AggFn::kSum: acc += row[agg_idx_[a]]; break;
          case AggFn::kMin: acc = std::min(acc, row[agg_idx_[a]]); break;
          case AggFn::kMax: acc = std::max(acc, row[agg_idx_[a]]); break;
        }
      }
    }
  }
  child_->Close();
  // Group state memory (transient; charged as hash-table pages).
  const int64_t group_pages =
      (static_cast<int64_t>(groups_.size()) + kRowsPerPage - 1) / kRowsPerPage;
  const int64_t grant = ctx->memory()->Grant(std::max<int64_t>(1, group_pages));
  ctx->memory()->Release(grant);
  emit_it_ = groups_.begin();
  emitting_ = true;
  // Global aggregation over an empty input still yields one row.
  if (group_slots_.empty() && groups_.empty()) {
    std::vector<int64_t> accs(aggs_.size(), 0);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (aggs_[a].fn == AggFn::kMin) {
        accs[a] = std::numeric_limits<int64_t>::max();
      } else if (aggs_[a].fn == AggFn::kMax) {
        accs[a] = std::numeric_limits<int64_t>::min();
      }
    }
    groups_.emplace(std::vector<int64_t>{}, std::move(accs));
    emit_it_ = groups_.begin();
  }
  return Status::OK();
}

Status HashAggOp::Next(RowBatch* out) {
  out->Reset(slots_.size());
  std::vector<int64_t> row(slots_.size());
  while (emitting_ && emit_it_ != groups_.end() && !out->full()) {
    size_t c = 0;
    for (int64_t g : emit_it_->first) row[c++] = g;
    for (int64_t a : emit_it_->second) row[c++] = a;
    out->AppendRow(row);
    ++emit_it_;
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(out->num_rows()));
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void HashAggOp::Close() { groups_.clear(); }

// ---- CheckOp ---------------------------------------------------------------

CheckOp::CheckOp(OperatorPtr child, int64_t estimated_rows, int64_t valid_lo,
                 int64_t valid_hi)
    : child_(std::move(child)), estimated_rows_(estimated_rows),
      valid_lo_(valid_lo), valid_hi_(valid_hi) {}

Status CheckOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  next_ = 0;
  buffer_ = std::make_shared<std::vector<RowBatch>>();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  int64_t actual = 0;
  while (true) {
    RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
    RowBatch batch;
    RQP_RETURN_IF_ERROR(child_->Next(&batch));
    if (batch.empty()) break;
    actual += static_cast<int64_t>(batch.num_rows());
    buffer_->push_back(std::move(batch));
  }
  child_->Close();
  // Materialization I/O: the intermediate is written once (and re-read by
  // whoever consumes it — charged on replay below).
  const int64_t pages = (actual + kRowsPerPage - 1) / kRowsPerPage;
  ctx->ChargeSpill(pages, 0);

  if (actual < valid_lo_ || actual > valid_hi_) {
    ExecContext::ReoptRequest req;
    req.plan_node_id = plan_node_id();
    req.estimated_rows = estimated_rows_;
    req.actual_rows = actual;
    req.slots = child_->output_slots();
    req.materialized = buffer_;
    ctx->RaiseReopt(std::move(req));
    return Status::FailedPrecondition(
        "POP checkpoint violated: actual cardinality outside validity range");
  }
  return Status::OK();
}

Status CheckOp::Next(RowBatch* out) {
  if (next_ < buffer_->size()) {
    *out = (*buffer_)[next_++];
    ctx_->ChargeSeqPages(
        (static_cast<int64_t>(out->num_rows()) + kRowsPerPage - 1) /
        kRowsPerPage);
  } else {
    out->Reset(output_slots().size());
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void CheckOp::Close() {}

}  // namespace rqp
