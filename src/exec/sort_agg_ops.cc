#include "exec/sort_agg_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

namespace rqp {
namespace {
int FindSlotIdx(const std::vector<std::string>& slots,
                const std::string& name) {
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == name) return static_cast<int>(i);
  }
  return -1;
}

// splitmix64 finalizer; the aggregation partitioner salts it with the
// recursion depth so every level re-partitions with an independent hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

// ---- SortOp ----------------------------------------------------------------

SortOp::SortOp(OperatorPtr child, std::string key_slot, Options options)
    : child_(std::move(child)), key_(std::move(key_slot)), options_(options) {
  if (options_.merge_fanin < 2) options_.merge_fanin = 2;
}

SortOp::~SortOp() {
  // DrainOperator does not Close() on error paths: grants and registration
  // must not outlive the operator.
  ReleaseAllMemory();
  if (registered_ && broker_ != nullptr) {
    broker_->Unregister(this);
    registered_ = false;
  }
}

void SortOp::ReleaseAllMemory() {
  if (broker_ == nullptr) return;
  broker_->Release(buffer_pages_);
  buffer_pages_ = 0;
  broker_->Release(merge_pages_);
  merge_pages_ = 0;
}

Status SortOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  broker_ = ctx->memory();
  vectorized_ = ctx->vectorized();
  ResetCount();
  next_ = 0;
  external_ = false;
  external_passes_ = 0;
  shed_error_ = Status::OK();
  rows_ = RowBuffer{};
  order_.clear();
  runs_.clear();
  cursors_.clear();
  const int k = FindSlotIdx(child_->output_slots(), key_);
  if (k < 0) return Status::InvalidArgument("sort key slot not found: " + key_);
  key_idx_ = static_cast<size_t>(k);
  cols_ = child_->output_slots().size();
  rows_.num_cols = cols_;
  open_capacity_ = broker_->capacity();
  if (options_.dynamic_memory && !registered_) {
    broker_->Register(this);
    registered_ = true;
  }

  RQP_RETURN_IF_ERROR(ConsumeInput(ctx));

  if (runs_.empty()) {
    // Everything fit: one in-memory stable sort, no external passes.
    const int64_t n = static_cast<int64_t>(rows_.num_rows());
    if (n > 1) {
      ctx->ChargeCompareOps(static_cast<int64_t>(
          static_cast<double>(n) * std::log2(static_cast<double>(n))));
    }
    SortBuffer();
    return Status::OK();
  }
  // The still-buffered tail becomes the last run; then merge.
  RQP_RETURN_IF_ERROR(FlushRun());
  return MergeRuns();
}

Status SortOp::ConsumeInput(ExecContext* ctx) {
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  while (true) {
    RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
    RowBatch in;
    RQP_RETURN_IF_ERROR(child_->Next(&in));
    if (in.empty()) break;
    // Batch start is the phase boundary: scheduled capacity drops land on
    // the clock during the child's Next, so poll before absorbing rows —
    // otherwise the grow path below resolves the deficit incidentally and
    // the revocation is never observed.
    RQP_RETURN_IF_ERROR(PollRevocation());
    for (size_t r = 0; r < in.num_rows(); ++r) {
      // Pages needed once this row lands in the buffer.
      const int64_t needed =
          (static_cast<int64_t>(rows_.num_rows()) + kRowsPerPage) /
          kRowsPerPage;
      if (needed > buffer_pages_) {
        // The static policy is a one-shot deal struck at Open(): it never
        // grows into memory freed later; only the dynamic policy does.
        const bool headroom =
            broker_->available() > 0 &&
            (options_.dynamic_memory || buffer_pages_ < open_capacity_);
        if (headroom || rows_.num_rows() == 0) {
          // Grow — or, with an empty buffer, take the 1-page progress
          // minimum even over-committed.
          buffer_pages_ += broker_->Grant(1);
        } else {
          // No headroom: cut the buffer as a sorted run and start fresh.
          RQP_RETURN_IF_ERROR(FlushRun());
          buffer_pages_ += broker_->Grant(1);
        }
      }
      rows_.Append(in.row(r));
    }
  }
  child_->Close();
  return Status::OK();
}

void SortOp::SortBuffer() {
  const size_t n = rows_.num_rows();
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  if (vectorized_) {
    // Gather keys once; the comparator then reads a dense array instead of
    // striding row pointers. Same stable sort on the same key values, so
    // the resulting permutation is identical to the scalar comparator's.
    key_gather_.resize(n);
    for (size_t i = 0; i < n; ++i) key_gather_[i] = rows_.row(i)[key_idx_];
    std::stable_sort(order_.begin(), order_.end(), [this](size_t a, size_t b) {
      return key_gather_[a] < key_gather_[b];
    });
    return;
  }
  std::stable_sort(order_.begin(), order_.end(), [this](size_t a, size_t b) {
    return rows_.row(a)[key_idx_] < rows_.row(b)[key_idx_];
  });
}

Status SortOp::FlushRun() {
  const size_t n = rows_.num_rows();
  if (n == 0) return Status::OK();
  SortBuffer();
  if (n > 1) {
    ctx_->ChargeCompareOps(static_cast<int64_t>(
        static_cast<double>(n) * std::log2(static_cast<double>(n))));
  }
  auto file = ctx_->spill()->Create(cols_);
  if (!file.ok()) return file.status();
  for (size_t i = 0; i < n; ++i) {
    RQP_RETURN_IF_ERROR((*file)->AppendRow(rows_.row(order_[i])));
  }
  RQP_RETURN_IF_ERROR((*file)->FinishWrite());
  runs_.push_back(std::move(file).value());
  ++ctx_->counters().spill_partitions;
  rows_.data.clear();
  order_.clear();
  broker_->Release(buffer_pages_);
  buffer_pages_ = 0;
  return Status::OK();
}

Status SortOp::MergeRuns() {
  external_ = true;
  while (true) {
    // One cursor page per input run plus the output page.
    int64_t want = std::min<int64_t>(options_.merge_fanin,
                                     static_cast<int64_t>(runs_.size())) +
                   1;
    if (!options_.dynamic_memory) {
      want = std::min(want, std::max<int64_t>(open_capacity_, 2));
    }
    if (options_.dynamic_memory || merge_pages_ == 0) {
      // Grow & shrink: renegotiate before every generation, so capacity
      // changes mid-merge adjust the fan-in instead of failing.
      broker_->Release(merge_pages_);
      merge_pages_ = broker_->Grant(want);
    }
    const int64_t fanin =
        std::clamp<int64_t>(merge_pages_ - 1, 2, options_.merge_fanin);
    ++external_passes_;
    if (static_cast<int64_t>(runs_.size()) <= fanin) break;
    RQP_RETURN_IF_ERROR(MergeGeneration(fanin));
  }
  // The last generation streams straight out of the surviving runs: open
  // one single-page cursor per run for Next().
  cursors_.clear();
  cursors_.reserve(runs_.size());
  for (auto& run : runs_) {
    MergeCursor c;
    c.file = run.get();
    RQP_RETURN_IF_ERROR(run->Rewind());
    RQP_RETURN_IF_ERROR(run->ReadBatch(&c.batch, kRowsPerPage));
    if (c.batch.empty()) c.file = nullptr;
    cursors_.push_back(std::move(c));
  }
  return Status::OK();
}

Status SortOp::MergeGeneration(int64_t fanin) {
  std::vector<std::unique_ptr<SpillFile>> next_runs;
  for (size_t base = 0; base < runs_.size();
       base += static_cast<size_t>(fanin)) {
    RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
    const size_t end =
        std::min(runs_.size(), base + static_cast<size_t>(fanin));
    if (end - base == 1) {
      next_runs.push_back(std::move(runs_[base]));
      continue;
    }
    std::vector<MergeCursor> cursors;
    cursors.reserve(end - base);
    for (size_t i = base; i < end; ++i) {
      MergeCursor c;
      c.file = runs_[i].get();
      RQP_RETURN_IF_ERROR(c.file->Rewind());
      RQP_RETURN_IF_ERROR(c.file->ReadBatch(&c.batch, kRowsPerPage));
      if (c.batch.empty()) c.file = nullptr;
      cursors.push_back(std::move(c));
    }
    auto merged = ctx_->spill()->Create(cols_);
    if (!merged.ok()) return merged.status();
    int64_t rows_merged = 0;
    while (true) {
      // Lowest key wins; ties go to the earliest run, which — with runs
      // kept in formation order — reproduces a global stable sort.
      int best = -1;
      for (size_t i = 0; i < cursors.size(); ++i) {
        const MergeCursor& c = cursors[i];
        if (c.file == nullptr) continue;
        if (best < 0 ||
            c.batch.row(c.pos)[key_idx_] <
                cursors[static_cast<size_t>(best)]
                    .batch.row(cursors[static_cast<size_t>(best)].pos)
                        [key_idx_]) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      MergeCursor& c = cursors[static_cast<size_t>(best)];
      RQP_RETURN_IF_ERROR((*merged)->AppendRow(c.batch.row(c.pos)));
      ++rows_merged;
      if (++c.pos >= c.batch.num_rows()) {
        RQP_RETURN_IF_ERROR(c.file->ReadBatch(&c.batch, kRowsPerPage));
        c.pos = 0;
        if (c.batch.empty()) c.file = nullptr;
      }
    }
    ctx_->ChargeCompareOps(rows_merged *
                           static_cast<int64_t>(cursors.size() - 1));
    RQP_RETURN_IF_ERROR((*merged)->FinishWrite());
    next_runs.push_back(std::move(merged).value());
    // Source runs (and their files) die here.
    for (size_t i = base; i < end; ++i) runs_[i].reset();
  }
  runs_ = std::move(next_runs);
  return PollRevocation();
}

Status SortOp::Next(RowBatch* out) {
  out->Reset(output_slots().size());
  if (!external_) {
    while (next_ < order_.size() && !out->full()) {
      out->AppendRow(rows_.row(order_[next_++]));
    }
  } else {
    int64_t compares = 0;
    const int64_t k = static_cast<int64_t>(cursors_.size());
    while (!out->full()) {
      int best = -1;
      for (size_t i = 0; i < cursors_.size(); ++i) {
        const MergeCursor& c = cursors_[i];
        if (c.file == nullptr) continue;
        if (best < 0 ||
            c.batch.row(c.pos)[key_idx_] <
                cursors_[static_cast<size_t>(best)]
                    .batch.row(cursors_[static_cast<size_t>(best)].pos)
                        [key_idx_]) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      MergeCursor& c = cursors_[static_cast<size_t>(best)];
      out->AppendRow(c.batch.row(c.pos));
      compares += k - 1;
      if (++c.pos >= c.batch.num_rows()) {
        RQP_RETURN_IF_ERROR(c.file->ReadBatch(&c.batch, kRowsPerPage));
        c.pos = 0;
        if (c.batch.empty()) c.file = nullptr;
      }
    }
    if (compares > 0) ctx_->ChargeCompareOps(compares);
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(out->num_rows()));
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

Status SortOp::PollRevocation() {
  if (!registered_ || broker_ == nullptr || !broker_->overcommitted()) {
    return Status::OK();
  }
  const int64_t shed = broker_->PollRevocation(this);
  if (shed > 0) ++ctx_->counters().memory_revocations;
  if (!shed_error_.ok()) {
    Status s = shed_error_;
    shed_error_ = Status::OK();
    return s;
  }
  return Status::OK();
}

int64_t SortOp::ShedPages(int64_t deficit) {
  (void)deficit;
  // Only the run-formation buffer is sheddable; merge generations already
  // renegotiate their grant at every generation boundary.
  if (external_ || rows_.num_rows() == 0 || buffer_pages_ == 0) return 0;
  const int64_t released = buffer_pages_;
  Status st = FlushRun();  // releases the buffer's pages
  if (!st.ok()) {
    shed_error_ = st;
    return 0;
  }
  return released;
}

void SortOp::Close() {
  ReleaseAllMemory();
  if (registered_ && broker_ != nullptr) {
    broker_->Unregister(this);
    registered_ = false;
  }
  broker_ = nullptr;  // the broker may not outlive this operator
  rows_ = RowBuffer{};
  order_.clear();
  cursors_.clear();
  runs_.clear();
}

// ---- FlatGroups ------------------------------------------------------------

void FlatGroups::Reset(size_t kw, size_t aw) {
  key_width = kw;
  acc_width = aw;
  num_groups = 0;
  keys.clear();
  accs.clear();
  buckets.assign(16, kEmpty);
  mask = buckets.size() - 1;
}

uint64_t FlatGroups::Hash(const int64_t* k) const {
  // splitmix64 chain from a fixed seed — independent of the depth-salted
  // chain HashAggOp::PartitionOfKey uses, so bucket placement inside the
  // table is uncorrelated with shed-partition placement.
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (size_t i = 0; i < key_width; ++i) {
    h = Mix64(h ^ static_cast<uint64_t>(k[i]));
  }
  return h;
}

void FlatGroups::Grow() {
  buckets.assign(buckets.size() * 2, kEmpty);
  mask = buckets.size() - 1;
  for (uint32_t g = 0; g < static_cast<uint32_t>(num_groups); ++g) {
    size_t b = static_cast<size_t>(Hash(key(g)) & mask);
    while (buckets[b] != kEmpty) b = (b + 1) & mask;
    buckets[b] = g;
  }
}

uint32_t FlatGroups::Upsert(const int64_t* k, bool* inserted) {
  if ((num_groups + 1) * 4 >= buckets.size() * 3) Grow();  // load < 3/4
  size_t b = static_cast<size_t>(Hash(k) & mask);
  while (buckets[b] != kEmpty) {
    const uint32_t g = buckets[b];
    if (std::equal(k, k + key_width, key(g))) {
      *inserted = false;
      return g;
    }
    b = (b + 1) & mask;
  }
  const uint32_t g = static_cast<uint32_t>(num_groups++);
  buckets[b] = g;
  keys.insert(keys.end(), k, k + key_width);
  accs.resize(accs.size() + acc_width);
  *inserted = true;
  return g;
}

std::vector<uint32_t> FlatGroups::SortedIds() const {
  std::vector<uint32_t> ids(num_groups);
  std::iota(ids.begin(), ids.end(), 0);
  std::sort(ids.begin(), ids.end(), [this](uint32_t a, uint32_t b) {
    const int64_t* ka = key(a);
    const int64_t* kb = key(b);
    return std::lexicographical_compare(ka, ka + key_width, kb,
                                        kb + key_width);
  });
  return ids;
}

// ---- HashAggOp -------------------------------------------------------------

HashAggOp::HashAggOp(OperatorPtr child, std::vector<std::string> group_slots,
                     std::vector<AggSpec> aggregates, Options options)
    : child_(std::move(child)), group_slots_(std::move(group_slots)),
      aggs_(std::move(aggregates)), options_(options) {
  slots_ = group_slots_;
  for (const auto& a : aggs_) slots_.push_back(a.output_name);
  if (options_.fan_out < 2) options_.fan_out = 2;
  if (options_.max_recursion < 1) options_.max_recursion = 1;
}

HashAggOp::~HashAggOp() {
  ReleaseAllMemory();
  if (registered_ && broker_ != nullptr) {
    broker_->Unregister(this);
    registered_ = false;
  }
}

void HashAggOp::ReleaseAllMemory() {
  if (broker_ == nullptr) return;
  broker_->Release(charged_pages_);
  charged_pages_ = 0;
}

size_t HashAggOp::PartitionOfKey(const int64_t* key, size_t n) const {
  uint64_t h = Mix64(static_cast<uint64_t>(depth_) + 1);
  for (size_t i = 0; i < n; ++i) h = Mix64(h ^ static_cast<uint64_t>(key[i]));
  return static_cast<size_t>(h % static_cast<uint64_t>(options_.fan_out));
}

size_t HashAggOp::PartitionOf(const std::vector<int64_t>& key) const {
  return PartitionOfKey(key.data(), key.size());
}

void InitAggAccumulators(const std::vector<AggSpec>& aggs,
                         std::vector<int64_t>* accs) {
  accs->assign(aggs.size(), 0);
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].fn == AggFn::kMin) {
      (*accs)[a] = std::numeric_limits<int64_t>::max();
    } else if (aggs[a].fn == AggFn::kMax) {
      (*accs)[a] = std::numeric_limits<int64_t>::min();
    }
  }
}

void MergeAggInputRow(const std::vector<AggSpec>& aggs,
                      const std::vector<size_t>& agg_idx, const int64_t* row,
                      std::vector<int64_t>* accs) {
  for (size_t a = 0; a < aggs.size(); ++a) {
    int64_t& acc = (*accs)[a];
    switch (aggs[a].fn) {
      case AggFn::kCount: ++acc; break;
      case AggFn::kSum: acc += row[agg_idx[a]]; break;
      case AggFn::kMin: acc = std::min(acc, row[agg_idx[a]]); break;
      case AggFn::kMax: acc = std::max(acc, row[agg_idx[a]]); break;
    }
  }
}

void MergeAggPartial(const std::vector<AggSpec>& aggs, const int64_t* partial,
                     std::vector<int64_t>* accs) {
  // Partials carry already-aggregated state: counts add (not ++), sums add,
  // min/max fold.
  for (size_t a = 0; a < aggs.size(); ++a) {
    int64_t& acc = (*accs)[a];
    switch (aggs[a].fn) {
      case AggFn::kCount: acc += partial[a]; break;
      case AggFn::kSum: acc += partial[a]; break;
      case AggFn::kMin: acc = std::min(acc, partial[a]); break;
      case AggFn::kMax: acc = std::max(acc, partial[a]); break;
    }
  }
}

void HashAggOp::InitAccumulators(std::vector<int64_t>* accs) const {
  InitAggAccumulators(aggs_, accs);
}

void HashAggOp::MergeInputRow(const int64_t* row,
                              std::vector<int64_t>* accs) const {
  MergeAggInputRow(aggs_, agg_idx_, row, accs);
}

void HashAggOp::MergePartialRow(const int64_t* partial,
                                std::vector<int64_t>* accs) const {
  MergeAggPartial(aggs_, partial + group_idx_.size(), accs);
}

void HashAggOp::InitAggCells(int64_t* acc) const {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    switch (aggs_[a].fn) {
      case AggFn::kCount:
      case AggFn::kSum: acc[a] = 0; break;
      case AggFn::kMin: acc[a] = std::numeric_limits<int64_t>::max(); break;
      case AggFn::kMax: acc[a] = std::numeric_limits<int64_t>::min(); break;
    }
  }
}

void HashAggOp::MergeRowIntoCells(int64_t* acc, const int64_t* row,
                                  bool partial) const {
  const size_t kw = group_idx_.size();
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const int64_t v = partial ? row[kw + a]
                              : (aggs_[a].fn == AggFn::kCount
                                     ? 0
                                     : row[agg_idx_[a]]);
    switch (aggs_[a].fn) {
      case AggFn::kCount: acc[a] += partial ? v : 1; break;
      case AggFn::kSum: acc[a] += v; break;
      case AggFn::kMin: acc[a] = std::min(acc[a], v); break;
      case AggFn::kMax: acc[a] = std::max(acc[a], v); break;
    }
  }
}

void HashAggOp::FlushDeferred(const RowBatch& in, bool partial) {
  if (def_rows_.empty()) return;
  const size_t n = def_rows_.size();
  const size_t kw = group_idx_.size();
  const size_t stride = aggs_.size();
  // Op-major: one aggregate-function dispatch per column, then a tight
  // gather-accumulate loop over the deferred selection — no per-row switch,
  // no map lookups. All four functions are commutative and associative in
  // exact int64 arithmetic, so regrouping rows per column produces the same
  // accumulator bytes as the scalar row-at-a-time order.
  for (size_t a = 0; a < stride; ++a) {
    int64_t* cells = flat_.accs.data() + a;
    const size_t src = partial ? kw + a : agg_idx_[a];
    switch (aggs_[a].fn) {
      case AggFn::kCount:
        if (partial) {
          for (size_t i = 0; i < n; ++i) {
            cells[def_grps_[i] * stride] += in.row(def_rows_[i])[src];
          }
        } else {
          for (size_t i = 0; i < n; ++i) ++cells[def_grps_[i] * stride];
        }
        break;
      case AggFn::kSum:
        for (size_t i = 0; i < n; ++i) {
          cells[def_grps_[i] * stride] += in.row(def_rows_[i])[src];
        }
        break;
      case AggFn::kMin:
        for (size_t i = 0; i < n; ++i) {
          int64_t& c = cells[def_grps_[i] * stride];
          c = std::min(c, in.row(def_rows_[i])[src]);
        }
        break;
      case AggFn::kMax:
        for (size_t i = 0; i < n; ++i) {
          int64_t& c = cells[def_grps_[i] * stride];
          c = std::max(c, in.row(def_rows_[i])[src]);
        }
        break;
    }
  }
  def_rows_.clear();
  def_grps_.clear();
}

Status HashAggOp::AbsorbBatch(const RowBatch& in, bool partial) {
  const size_t kw = group_idx_.size();
  key_scratch_.resize(kw);
  def_rows_.clear();
  def_grps_.clear();
  for (size_t r = 0; r < in.num_rows(); ++r) {
    const int64_t* row = in.row(r);
    for (size_t g = 0; g < kw; ++g) {
      key_scratch_[g] = partial ? row[g] : row[group_idx_[g]];
    }
    bool inserted = false;
    const uint32_t gid = flat_.Upsert(key_scratch_.data(), &inserted);
    if (!inserted) {
      // Existing group: defer; the op-major flush absorbs it later. Group
      // ids stay stable across Upsert growth, so the recorded id is safe.
      def_rows_.push_back(static_cast<uint32_t>(r));
      def_grps_.push_back(gid);
      continue;
    }
    // New group: flush the deferred tail first, so if the capacity check
    // below sheds the table, every earlier row of this batch has already
    // been absorbed — exactly the state the scalar per-row loop would shed.
    FlushDeferred(in, partial);
    int64_t* acc = flat_.acc(gid);
    InitAggCells(acc);
    MergeRowIntoCells(acc, row, partial);
    RQP_RETURN_IF_ERROR(EnsureGroupCapacity());
  }
  FlushDeferred(in, partial);
  return Status::OK();
}

Status HashAggOp::EnsureGroupCapacity() {
  while (true) {
    const int64_t needed = std::max<int64_t>(
        1, (static_cast<int64_t>(GroupCount()) + kRowsPerPage - 1) /
               kRowsPerPage);
    if (needed <= charged_pages_) return Status::OK();
    if (broker_->available() > 0) {
      charged_pages_ += broker_->Grant(1);
      continue;
    }
    if (depth_ < options_.max_recursion && !slots_.empty() &&
        GroupCount() > 1) {
      RQP_RETURN_IF_ERROR(ShedGroups());
      continue;
    }
    // Out of levels (or nothing sheddable): over-commit rather than fail —
    // completion at degraded speed beats an error.
    charged_pages_ += broker_->Grant(1);
  }
}

Status HashAggOp::ShedGroups() {
  if (shed_files_.empty()) {
    shed_files_.resize(static_cast<size_t>(options_.fan_out));
  }
  const size_t kw = group_idx_.size();
  std::vector<int64_t> row(slots_.size());
  auto shed_one = [&](const int64_t* key, const int64_t* accs) -> Status {
    size_t c = 0;
    for (size_t i = 0; i < kw; ++i) row[c++] = key[i];
    for (size_t a = 0; a < aggs_.size(); ++a) row[c++] = accs[a];
    auto& file = shed_files_[PartitionOfKey(key, kw)];
    if (file == nullptr) {
      auto created = ctx_->spill()->Create(slots_.size());
      if (!created.ok()) return created.status();
      file = std::move(created).value();
      ++ctx_->counters().spill_partitions;
    }
    return file->AppendRow(row.data());
  };
  if (vectorized_) {
    // Sorted-id walk = the scalar map's iteration order, so the shed files'
    // row order is byte-identical between modes.
    for (uint32_t g : flat_.SortedIds()) {
      RQP_RETURN_IF_ERROR(shed_one(flat_.key(g), flat_.acc(g)));
    }
    flat_.Reset(kw, aggs_.size());
  } else {
    for (const auto& [key, accs] : groups_) {
      RQP_RETURN_IF_ERROR(shed_one(key.data(), accs.data()));
    }
    groups_.clear();
  }
  broker_->Release(charged_pages_);
  charged_pages_ = 0;
  shed_this_level_ = true;
  return Status::OK();
}

Status HashAggOp::SealShedFiles() {
  // LIFO pending order keeps the set of live files bounded by the fan-out
  // times the recursion depth.
  for (auto& file : shed_files_) {
    if (file == nullptr) continue;
    RQP_RETURN_IF_ERROR(file->FinishWrite());
    pending_.push_back(PendingPartition{std::move(file), depth_ + 1});
  }
  shed_files_.clear();
  return Status::OK();
}

Status HashAggOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  broker_ = ctx->memory();
  vectorized_ = ctx->vectorized();
  ResetCount();
  groups_.clear();
  emit_order_.clear();
  emit_pos_ = 0;
  emitting_ = false;
  depth_ = 0;
  shed_this_level_ = false;
  shed_error_ = Status::OK();
  shed_files_.clear();
  pending_.clear();
  group_idx_.clear();
  agg_idx_.clear();
  const auto& in_slots = child_->output_slots();
  for (const auto& g : group_slots_) {
    const int i = FindSlotIdx(in_slots, g);
    if (i < 0) return Status::InvalidArgument("group slot not found: " + g);
    group_idx_.push_back(static_cast<size_t>(i));
  }
  for (const auto& a : aggs_) {
    if (a.fn == AggFn::kCount) {
      agg_idx_.push_back(0);  // unused
      continue;
    }
    const int i = FindSlotIdx(in_slots, a.slot);
    if (i < 0) return Status::InvalidArgument("agg slot not found: " + a.slot);
    agg_idx_.push_back(static_cast<size_t>(i));
  }
  if (!registered_) {
    broker_->Register(this);
    registered_ = true;
  }

  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  if (vectorized_) flat_.Reset(group_idx_.size(), aggs_.size());
  std::vector<int64_t> key(group_idx_.size());
  while (true) {
    RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
    RowBatch in;
    RQP_RETURN_IF_ERROR(child_->Next(&in));
    if (in.empty()) break;
    // Poll at batch start (the phase boundary) before absorbing rows, so a
    // capacity drop charged during the child's Next is shed as a revocation
    // rather than resolved incidentally by the grow path.
    RQP_RETURN_IF_ERROR(PollRevocation());
    if (vectorized_) {
      // One hash-op flush per input batch right where the scalar path's
      // per-row charges would all land anyway (DESIGN.md §10), then the
      // batched flat-table kernel.
      ctx->ChargeHashOps(static_cast<int64_t>(in.num_rows()));
      RQP_RETURN_IF_ERROR(AbsorbBatch(in, /*partial=*/false));
      continue;
    }
    for (size_t r = 0; r < in.num_rows(); ++r) {
      const int64_t* row = in.row(r);
      for (size_t g = 0; g < group_idx_.size(); ++g) {
        key[g] = row[group_idx_[g]];
      }
      ctx->ChargeHashOps(1);
      auto [it, inserted] = groups_.try_emplace(key);
      if (inserted) {
        InitAccumulators(&it->second);
        MergeInputRow(row, &it->second);
        RQP_RETURN_IF_ERROR(EnsureGroupCapacity());
      } else {
        MergeInputRow(row, &it->second);
      }
    }
  }
  child_->Close();

  if (shed_this_level_ || !shed_files_.empty()) {
    // Spilled: the resident remainder may share keys with shed partitions,
    // so it must go through the partition merge too.
    if (GroupCount() > 0) RQP_RETURN_IF_ERROR(ShedGroups());
    RQP_RETURN_IF_ERROR(SealShedFiles());
    return Status::OK();  // Next() drives ProcessPending()
  }

  // Global aggregation over an empty input still yields one row.
  if (group_slots_.empty() && GroupCount() == 0) {
    if (vectorized_) {
      bool inserted = false;
      key_scratch_.clear();
      flat_.Upsert(key_scratch_.data(), &inserted);
      InitAggCells(flat_.acc(0));
    } else {
      std::vector<int64_t> accs;
      InitAccumulators(&accs);
      groups_.emplace(std::vector<int64_t>{}, std::move(accs));
    }
  }
  emit_it_ = groups_.begin();
  if (vectorized_) {
    emit_order_ = flat_.SortedIds();
    emit_pos_ = 0;
  }
  emitting_ = true;
  return Status::OK();
}

Status HashAggOp::ProcessPending() {
  while (!pending_.empty()) {
    PendingPartition task = std::move(pending_.back());
    pending_.pop_back();
    depth_ = task.depth;
    shed_this_level_ = false;
    ctx_->counters().spill_recursion_depth = std::max<int64_t>(
        ctx_->counters().spill_recursion_depth, depth_);
    RQP_RETURN_IF_ERROR(task.file->Rewind());
    std::vector<int64_t> key(group_idx_.size());
    while (true) {
      RQP_RETURN_IF_ERROR(ctx_->CheckGuardrails());
      RowBatch in;
      RQP_RETURN_IF_ERROR(task.file->ReadBatch(&in));
      if (in.empty()) break;
      RQP_RETURN_IF_ERROR(PollRevocation());
      if (vectorized_) {
        ctx_->ChargeHashOps(static_cast<int64_t>(in.num_rows()));
        RQP_RETURN_IF_ERROR(AbsorbBatch(in, /*partial=*/true));
        continue;
      }
      for (size_t r = 0; r < in.num_rows(); ++r) {
        const int64_t* row = in.row(r);
        for (size_t g = 0; g < group_idx_.size(); ++g) key[g] = row[g];
        ctx_->ChargeHashOps(1);
        auto [it, inserted] = groups_.try_emplace(key);
        if (inserted) {
          InitAccumulators(&it->second);
          MergePartialRow(row, &it->second);
          RQP_RETURN_IF_ERROR(EnsureGroupCapacity());
        } else {
          MergePartialRow(row, &it->second);
        }
      }
    }
    task.file.reset();  // consumed — the temp file is deleted
    if (shed_this_level_) {
      // This partition overflowed again: its state is now split across
      // depth+1 partitions; finish them and recurse (LIFO → depth first).
      if (GroupCount() > 0) RQP_RETURN_IF_ERROR(ShedGroups());
      RQP_RETURN_IF_ERROR(SealShedFiles());
      continue;
    }
    if (GroupCount() == 0) continue;
    emit_it_ = groups_.begin();
    if (vectorized_) {
      emit_order_ = flat_.SortedIds();
      emit_pos_ = 0;
    }
    emitting_ = true;
    return Status::OK();
  }
  emitting_ = false;
  return Status::OK();
}

Status HashAggOp::Next(RowBatch* out) {
  out->Reset(slots_.size());
  std::vector<int64_t> row(slots_.size());
  while (!out->full()) {
    const bool have = emitting_ && (vectorized_
                                        ? emit_pos_ < emit_order_.size()
                                        : emit_it_ != groups_.end());
    if (have) {
      size_t c = 0;
      if (vectorized_) {
        const uint32_t g = emit_order_[emit_pos_++];
        const int64_t* k = flat_.key(g);
        const int64_t* a = flat_.acc(g);
        for (size_t i = 0; i < group_idx_.size(); ++i) row[c++] = k[i];
        for (size_t i = 0; i < aggs_.size(); ++i) row[c++] = a[i];
      } else {
        for (int64_t g : emit_it_->first) row[c++] = g;
        for (int64_t a : emit_it_->second) row[c++] = a;
        ++emit_it_;
      }
      out->AppendRow(row);
      continue;
    }
    if (emitting_) {
      // Current partition fully emitted; recycle its memory.
      emitting_ = false;
      groups_.clear();
      if (vectorized_) {
        flat_.Reset(group_idx_.size(), aggs_.size());
        emit_order_.clear();
        emit_pos_ = 0;
      }
      if (broker_ != nullptr) {
        broker_->Release(charged_pages_);
        charged_pages_ = 0;
      }
    }
    if (pending_.empty()) break;
    RQP_RETURN_IF_ERROR(ProcessPending());
    if (!emitting_) break;
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(out->num_rows()));
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

Status HashAggOp::PollRevocation() {
  if (!registered_ || broker_ == nullptr || !broker_->overcommitted()) {
    return Status::OK();
  }
  const int64_t shed = broker_->PollRevocation(this);
  if (shed > 0) ++ctx_->counters().memory_revocations;
  if (!shed_error_.ok()) {
    Status s = shed_error_;
    shed_error_ = Status::OK();
    return s;
  }
  return Status::OK();
}

int64_t HashAggOp::ShedPages(int64_t deficit) {
  (void)deficit;
  if (emitting_ || GroupCount() <= 1 || charged_pages_ <= 1 ||
      depth_ >= options_.max_recursion || slots_.empty()) {
    return 0;
  }
  const int64_t released = charged_pages_;
  Status st = ShedGroups();
  if (!st.ok()) {
    shed_error_ = st;
    return 0;
  }
  return released;
}

void HashAggOp::Close() {
  ReleaseAllMemory();
  if (registered_ && broker_ != nullptr) {
    broker_->Unregister(this);
    registered_ = false;
  }
  broker_ = nullptr;  // the broker may not outlive this operator
  groups_.clear();
  flat_.Reset(0, 0);
  emit_order_.clear();
  emit_pos_ = 0;
  shed_files_.clear();
  pending_.clear();
}

// ---- CheckOp ---------------------------------------------------------------

CheckOp::CheckOp(OperatorPtr child, int64_t estimated_rows, int64_t valid_lo,
                 int64_t valid_hi)
    : child_(std::move(child)), estimated_rows_(estimated_rows),
      valid_lo_(valid_lo), valid_hi_(valid_hi) {}

Status CheckOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  next_ = 0;
  buffer_ = std::make_shared<std::vector<RowBatch>>();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  int64_t actual = 0;
  while (true) {
    RQP_RETURN_IF_ERROR(ctx->CheckGuardrails());
    RowBatch batch;
    RQP_RETURN_IF_ERROR(child_->Next(&batch));
    if (batch.empty()) break;
    actual += static_cast<int64_t>(batch.num_rows());
    buffer_->push_back(std::move(batch));
  }
  child_->Close();
  // Materialization I/O: the intermediate is written once (and re-read by
  // whoever consumes it — charged on replay below).
  const int64_t pages = (actual + kRowsPerPage - 1) / kRowsPerPage;
  ctx->ChargeSpill(pages, 0);

  if (actual < valid_lo_ || actual > valid_hi_) {
    ExecContext::ReoptRequest req;
    req.plan_node_id = plan_node_id();
    req.estimated_rows = estimated_rows_;
    req.actual_rows = actual;
    req.slots = child_->output_slots();
    req.materialized = buffer_;
    ctx->RaiseReopt(std::move(req));
    return Status::FailedPrecondition(
        "POP checkpoint violated: actual cardinality outside validity range");
  }
  return Status::OK();
}

Status CheckOp::Next(RowBatch* out) {
  if (next_ < buffer_->size()) {
    *out = (*buffer_)[next_++];
    ctx_->ChargeSeqPages(
        (static_cast<int64_t>(out->num_rows()) + kRowsPerPage - 1) /
        kRowsPerPage);
  } else {
    out->Reset(output_slots().size());
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

void CheckOp::Close() {}

}  // namespace rqp
