#include "exec/parallel.h"

#include <algorithm>

#include "storage/table.h"

namespace rqp {

MorselCursor::MorselCursor(int64_t total_rows, int64_t morsel_rows)
    : total_rows_(std::max<int64_t>(0, total_rows)) {
  morsel_rows = std::max<int64_t>(1, morsel_rows);
  // Round up to whole pages: ceil(morsel/kRowsPerPage) pages per interior
  // morsel, so Σ per-morsel pages == ceil(total/kRowsPerPage) exactly.
  morsel_rows_ =
      ((morsel_rows + kRowsPerPage - 1) / kRowsPerPage) * kRowsPerPage;
  num_morsels_ = (total_rows_ + morsel_rows_ - 1) / morsel_rows_;
}

bool MorselCursor::Claim(Morsel* m) {
  const int64_t id = next_.fetch_add(1, std::memory_order_relaxed);
  if (id >= num_morsels_) return false;
  m->id = id;
  m->begin = id * morsel_rows_;
  m->end = std::min(total_rows_, m->begin + morsel_rows_);
  return true;
}

double ScheduleMakespan(const std::vector<double>& costs, int workers) {
  workers = std::max(1, workers);
  std::vector<double> load(static_cast<size_t>(workers), 0.0);
  for (const double c : costs) {
    size_t target = 0;
    for (size_t w = 1; w < load.size(); ++w) {
      if (load[w] < load[target]) target = w;  // strict < : lowest id wins ties
    }
    load[target] += c;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace rqp
