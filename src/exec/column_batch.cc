#include "exec/column_batch.h"

#include "exec/context.h"

namespace rqp {

void ColumnBatch::MaterializeInto(RowBatch* out, ExecContext* ctx) const {
  const size_t ncols = cols_.size();
  std::vector<int64_t>& data = out->mutable_data();
  const size_t base = data.size();
  data.resize(base + n_ * ncols);
  int64_t* dst = data.data() + base;
  // Column-at-a-time strided stores: each source (view gather or flat run)
  // is read sequentially, mirroring the legacy vectorized scan's transpose.
  for (size_t c = 0; c < ncols; ++c) {
    const Column& col = cols_[c];
    int64_t* d = dst + c;
    if (!col.is_view) {
      const int64_t* src = col.flat.data();
      for (size_t i = 0; i < n_; ++i) d[i * ncols] = src[i];
    } else if (has_sel_) {
      const uint32_t* sel = sel_.data();
      const int64_t* src = col.base;
      for (size_t i = 0; i < n_; ++i) d[i * ncols] = src[sel[i]];
    } else {
      const int64_t* src = col.base + phys_begin_;
      for (size_t i = 0; i < n_; ++i) d[i * ncols] = src[i];
    }
  }
  if (ctx != nullptr) {
    ctx->counters().rows_materialized += static_cast<int64_t>(n_);
  }
}

}  // namespace rqp
