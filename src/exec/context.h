#ifndef RQP_EXEC_CONTEXT_H_
#define RQP_EXEC_CONTEXT_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "expr/simd.h"
#include "fault/fault.h"
#include "storage/spill.h"
#include "util/status.h"

namespace rqp {

/// Simulated cost-model constants (in abstract "cost units"; one unit = one
/// sequential page read). All experiment "response times" are expressed in
/// these units, making every table in the harness exactly reproducible —
/// the substitution for the authors' wall-clock measurements documented in
/// DESIGN.md.
struct CostModel {
  double seq_page_read = 1.0;    ///< sequential page read
  double random_page_read = 1.5; ///< random page fetch (index probe target)
  double index_descend = 0.5;    ///< B-tree root-to-leaf traversal
  double row_cpu = 1.0 / 512;    ///< per-row CPU work (predicate, copy)
  double hash_op = 1.0 / 256;    ///< hash probe per row
  double hash_build_factor = 1.5; ///< build-row cost relative to a probe
  double compare_op = 1.0 / 512; ///< comparison (sort/merge) per op
  double spill_page_write = 1.0; ///< spill partition write per page
  double spill_page_read = 1.0;  ///< spill partition re-read per page
  double exchange_page = 1.0;    ///< cross-shard exchange transfer per page
};

/// Execution counters; the deterministic clock plus diagnostics.
struct ExecCounters {
  double cost_units = 0;
  int64_t pages_read = 0;
  int64_t random_reads = 0;
  int64_t rows_processed = 0;
  int64_t hash_ops = 0;
  int64_t compare_ops = 0;
  int64_t spill_pages = 0;         ///< spill pages written to disk
  int64_t predicate_evals = 0;
  // Real-spill diagnostics (PR 2): filled from actual SpillManager traffic.
  int64_t spill_pages_reread = 0;   ///< spill pages read back from disk
  int64_t spill_partitions = 0;     ///< spill partitions created
  int64_t spill_recursion_depth = 0;  ///< deepest grace-partitioning level
  int64_t memory_revocations = 0;   ///< revocation polls that shed pages
  // Parallel-execution diagnostics (PR 3). cost_units always accumulates
  // *total work* (identical at every DOP for the same plan, so speedups are
  // honest); parallel_saved_units is the work hidden by overlap, computed
  // per parallel phase as total morsel cost minus the deterministic
  // list-schedule makespan. Simulated elapsed time = cost_units -
  // parallel_saved_units.
  double parallel_saved_units = 0;
  int64_t morsels = 0;           ///< morsels executed by parallel phases
  int64_t parallel_phases = 0;   ///< parallel phases run
  // Sharded-execution diagnostics (PR 9): filled by the exchange operators
  // and the ShardedEngine's skew mitigations.
  int64_t rows_shuffled = 0;     ///< rows repartitioned by hash shuffle
  int64_t rows_broadcast = 0;    ///< rows replicated to all shards
  int64_t morsels_stolen = 0;    ///< straggler morsels moved across shards
  int64_t hot_keys = 0;          ///< heavy-hitter keys diverted to broadcast
  // Late-materialization diagnostics (PR 10). Pure diagnostics with zero
  // cost-clock charge: the columnar path must keep the clock byte-identical
  // to the row-major path, so these two are the ONLY counters allowed to
  // differ across modes (identity tests compare everything else).
  int64_t rows_materialized = 0;  ///< columnar rows converted to row-major
  int64_t transposes_elided = 0;  ///< rows consumed columnar, never transposed

  void Merge(const ExecCounters& o) {
    cost_units += o.cost_units;
    pages_read += o.pages_read;
    random_reads += o.random_reads;
    rows_processed += o.rows_processed;
    hash_ops += o.hash_ops;
    compare_ops += o.compare_ops;
    spill_pages += o.spill_pages;
    predicate_evals += o.predicate_evals;
    spill_pages_reread += o.spill_pages_reread;
    spill_partitions += o.spill_partitions;
    spill_recursion_depth = std::max(spill_recursion_depth,
                                     o.spill_recursion_depth);
    memory_revocations += o.memory_revocations;
    parallel_saved_units += o.parallel_saved_units;
    morsels += o.morsels;
    parallel_phases += o.parallel_phases;
    rows_shuffled += o.rows_shuffled;
    rows_broadcast += o.rows_broadcast;
    morsels_stolen += o.morsels_stolen;
    hot_keys += o.hot_keys;
    rows_materialized += o.rows_materialized;
    transposes_elided += o.transposes_elided;
  }
};

/// Implemented by memory-adaptive operators that can give granted pages back
/// mid-query. The broker never calls into an operator asynchronously — so
/// shedding happens only when the operator itself polls at a phase boundary
/// (a point with no live references into the memory being shed). Under
/// parallel execution, workers poll at morsel boundaries; each worker sheds
/// only its own thread-local state.
class MemoryRevocable {
 public:
  virtual ~MemoryRevocable() = default;

  /// Asked to release up to `deficit` granted pages (via Release()), keeping
  /// at least the 1-page progress minimum. Returns pages actually released.
  virtual int64_t ShedPages(int64_t deficit) = 0;

  /// The broker is being destroyed while this operator is still registered
  /// (an error unwound the query without Close). The operator must drop its
  /// broker pointer — test fixtures may destroy the ExecContext before the
  /// operators that executed under it.
  virtual void OnBrokerDestroyed() {}
};

/// External cancellation token shared between a query's ExecContext and
/// whoever may kill the query from outside (the scheduler's deadline
/// enforcement and memory arbitration). Cancel() is one-shot: the first
/// caller's code/reason win and later calls are ignored, so a deadline
/// firing concurrently with a memory shed yields one deterministic-typed
/// status per query. Operators observe the token at their existing
/// cooperative-cancellation points (CheckGuardrails per batch, cancelled()
/// per morsel) — no new unwind paths.
class QueryCancelToken {
 public:
  QueryCancelToken() = default;
  QueryCancelToken(const QueryCancelToken&) = delete;
  QueryCancelToken& operator=(const QueryCancelToken&) = delete;

  /// Requests cancellation with a typed status. First call wins.
  void Cancel(StatusCode code, std::string reason) {
    std::lock_guard<std::mutex> lock(mu_);
    if (code_.load(std::memory_order_relaxed) != StatusCode::kOk) return;
    reason_ = std::move(reason);
    code_.store(code, std::memory_order_release);
  }

  bool cancelled() const {
    return code_.load(std::memory_order_acquire) != StatusCode::kOk;
  }

  /// The typed status carried by the cancellation (OK when not cancelled).
  Status ToStatus() const {
    const StatusCode code = code_.load(std::memory_order_acquire);
    if (code == StatusCode::kOk) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    return Status(code, reason_);
  }

 private:
  std::atomic<StatusCode> code_{StatusCode::kOk};
  mutable std::mutex mu_;  ///< guards reason_ until code_ is published
  std::string reason_;
};

/// Grants query memory (in pages). Capacity may be changed while queries
/// run (the FMT fluctuating-memory test); operators observe the new limit
/// at their next phase boundary when the dynamic policy is enabled.
///
/// Thread-safe (PR 3): grants, releases, and capacity changes may arrive
/// concurrently from parallel-phase workers; all state is guarded by an
/// internal mutex. PollRevocation never holds the broker lock across the
/// operator's ShedPages callback — shedding releases pages, which would
/// otherwise deadlock on lock re-entry.
class MemoryBroker {
 public:
  explicit MemoryBroker(int64_t capacity_pages = 1 << 20)
      : capacity_(capacity_pages) {}
  ~MemoryBroker() {
    for (MemoryRevocable* op : revocables_) op->OnBrokerDestroyed();
  }
  MemoryBroker(const MemoryBroker&) = delete;
  MemoryBroker& operator=(const MemoryBroker&) = delete;

  int64_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
  }
  int64_t used() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
  }
  int64_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_ > used_ ? capacity_ - used_ : 0;
  }

  /// Changes capacity. May be called while grants are outstanding: shrinking
  /// below `used()` is legal (the FMT test and fault injection both do it) —
  /// no assertion fires, `available()` clamps to zero, and subsequent grants
  /// shrink to the 1-page progress minimum until enough memory is released.
  /// Negative capacities clamp to zero.
  void set_capacity(int64_t pages) {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = pages < 0 ? 0 : pages;
  }

  /// Grants up to `requested` pages but never less than 1 — even when the
  /// broker is over-committed after a capacity shrink — so every operator
  /// can always make progress, at spill speed. Returns the grant size,
  /// which the caller must eventually Release().
  int64_t Grant(int64_t requested) {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t avail = capacity_ > used_ ? capacity_ - used_ : 0;
    const int64_t g = std::max<int64_t>(1, std::min(requested, avail));
    used_ += g;
    peak_used_ = std::max(peak_used_, used_);
    return g;
  }
  void Release(int64_t pages) {
    std::lock_guard<std::mutex> lock(mu_);
    used_ -= std::min(pages, used_);
  }

  /// All-or-nothing grant with no progress minimum and no overcommit —
  /// for *discretionary* memory (the result cache) that must never push
  /// the broker past capacity the way operator grants may. Returns false
  /// without taking anything when `pages` doesn't fit.
  bool TryGrant(int64_t pages) {
    std::lock_guard<std::mutex> lock(mu_);
    if (pages < 0 || used_ + pages > capacity_) return false;
    used_ += pages;
    peak_used_ = std::max(peak_used_, used_);
    return true;
  }

  /// High-water mark of `used()`; exceeds capacity() exactly when the broker
  /// ran over-committed (progress-minimum grants after a shrink).
  int64_t peak_used() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_used_;
  }

  /// True when a capacity shrink left grants outstanding beyond the limit;
  /// registered operators should shed at their next phase boundary.
  bool overcommitted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_ > capacity_;
  }

  // -- phase-boundary revocation --------------------------------------------
  /// Operators holding multi-page grants register while their grant is live.
  /// Registration is bookkeeping only (the broker never calls ShedPages
  /// spontaneously); Unregister is idempotent and safe from destructors.
  void Register(MemoryRevocable* op) {
    std::lock_guard<std::mutex> lock(mu_);
    revocables_.push_back(op);
  }
  void Unregister(MemoryRevocable* op) {
    std::lock_guard<std::mutex> lock(mu_);
    revocables_.erase(std::remove(revocables_.begin(), revocables_.end(), op),
                      revocables_.end());
  }
  int64_t registered_revocables() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(revocables_.size());
  }

  /// Phase-boundary revocation poll: when the broker is over-committed, asks
  /// the polling operator to shed up to the deficit (ShedPages keeps the
  /// 1-page progress minimum). Returns the pages shed. The deficit is read
  /// under the lock, but ShedPages runs outside it: the callback releases
  /// pages through this broker, and another worker may concurrently change
  /// the picture — shedding a few pages more than the instantaneous deficit
  /// is harmless, deadlocking is not.
  int64_t PollRevocation(MemoryRevocable* op) {
    int64_t deficit;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (used_ <= capacity_) return 0;
      deficit = used_ - capacity_;
    }
    const int64_t shed = op->ShedPages(deficit);
    if (shed > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++revocations_honored_;
    }
    return shed;
  }
  int64_t revocations_honored() const {
    std::lock_guard<std::mutex> lock(mu_);
    return revocations_honored_;
  }

 private:
  mutable std::mutex mu_;
  int64_t capacity_;
  int64_t used_ = 0;
  int64_t peak_used_ = 0;
  std::vector<MemoryRevocable*> revocables_;
  int64_t revocations_honored_ = 0;
};

/// Per-query execution context: cost clock, memory, and the re-optimization
/// mailbox used by POP CHECK operators.
class ExecContext {
 public:
  explicit ExecContext(MemoryBroker* memory = nullptr)
      : memory_(memory ? memory : &own_memory_) {}

  const CostModel& cost_model() const { return cost_model_; }
  void set_cost_model(const CostModel& cm) { cost_model_ = cm; }

  /// Vectorized execution gate (EngineOptions::vectorized / $RQP_VECTORIZED).
  /// Operators read this at Open and pick the selection-vector path or the
  /// per-row scalar path; both produce byte-identical output and identical
  /// cost-clock totals (DESIGN.md §10).
  void set_vectorized(bool v) { vectorized_ = v; }
  bool vectorized() const { return vectorized_; }

  /// Late-materialization gate (EngineOptions::late_materialize /
  /// $RQP_LATE_MAT). Effective only when vectorized() is also set: the
  /// columnar batch views are an overlay on the selection-vector path.
  /// Operators read this at Open to decide whether to flow ColumnBatch views
  /// to columnar-capable consumers or legacy row-major batches.
  void set_late_materialize(bool v) { late_materialize_ = v; }
  bool late_materialize() const { return late_materialize_ && vectorized_; }

  /// Resolved SIMD dispatch level (EngineOptions::simd / $RQP_SIMD). Changes
  /// instruction selection in the compare+compact and hash-mix kernels only;
  /// results are byte-identical at every level.
  void set_simd(SimdLevel level) { simd_ = level; }
  SimdLevel simd() const { return simd_; }

  ExecCounters& counters() { return counters_; }
  const ExecCounters& counters() const { return counters_; }
  double cost() const { return counters_.cost_units; }

  MemoryBroker* memory() { return memory_; }

  // -- spill subsystem -------------------------------------------------------
  /// Where spill directories are created (empty: SpillManager default).
  /// Must be set before the first spill() call to take effect.
  void set_spill_dir(std::string dir) { spill_dir_ = std::move(dir); }
  /// Deterministic id naming this context's spill directory
  /// (`<spill_dir>/<query_id>/`). Defaults to "q0".
  void set_query_id(std::string id) { query_id_ = std::move(id); }
  const std::string& query_id() const { return query_id_; }

  /// The query's spill manager, created lazily on first use so purely
  /// in-memory queries never touch the filesystem. Its page charges land on
  /// this context's cost clock (ChargeSpill), keeping file-level accounting
  /// and the simulated clock reconciled by construction. Destroyed — along
  /// with every temp file — when this context goes out of scope, which in
  /// Engine::Run is per execution attempt (success, abort, and cooperative
  /// cancellation alike).
  SpillManager* spill() {
    if (spill_ == nullptr) {
      spill_ = std::make_unique<SpillManager>(
          spill_dir_, query_id_,
          [this](int64_t w, int64_t r) { ChargeSpill(w, r); });
    }
    return spill_.get();
  }
  bool has_spill() const { return spill_ != nullptr; }

  /// FMT (fluctuating memory test) support: once the simulated clock passes
  /// `threshold` cost units, the broker capacity is set to the paired
  /// value. Thresholds must be ascending. Operators with dynamic memory
  /// policies observe the change at their next grant.
  void SetMemorySchedule(std::vector<std::pair<double, int64_t>> schedule) {
    memory_schedule_ = std::move(schedule);
    next_schedule_ = 0;
  }

  // -- charging helpers ----------------------------------------------------
  // Page-read charges optionally carry the table being read so scheduled
  // per-table I/O slowdowns can tax them.
  void ChargeSeqPages(int64_t pages, const std::string& table = {}) {
    counters_.pages_read += pages;
    counters_.cost_units +=
        cost_model_.seq_page_read * pages * IoMultiplier(table, pages);
    ApplyScheduledEvents();
  }
  void ChargeRandomReads(int64_t reads, const std::string& table = {}) {
    counters_.random_reads += reads;
    counters_.cost_units +=
        cost_model_.random_page_read * reads * IoMultiplier(table, reads);
  }
  void ChargeIndexDescend(int64_t descends = 1) {
    counters_.cost_units += cost_model_.index_descend * descends;
  }
  void ChargeRowCpu(int64_t rows) {
    counters_.rows_processed += rows;
    counters_.cost_units += cost_model_.row_cpu * rows;
  }
  void ChargeHashOps(int64_t ops) {
    counters_.hash_ops += ops;
    counters_.cost_units += cost_model_.hash_op * ops;
  }
  void ChargeCompareOps(int64_t ops) {
    counters_.compare_ops += ops;
    counters_.cost_units += cost_model_.compare_op * ops;
  }
  void ChargeSpill(int64_t pages_written, int64_t pages_reread) {
    counters_.spill_pages += pages_written;
    counters_.spill_pages_reread += pages_reread;
    counters_.cost_units += cost_model_.spill_page_write * pages_written +
                            cost_model_.spill_page_read * pages_reread;
    ApplyScheduledEvents();
  }
  void ChargePredicateEvals(int64_t evals) {
    counters_.predicate_evals += evals;
    counters_.cost_units += cost_model_.row_cpu * evals;
    ApplyScheduledEvents();
  }
  /// Cross-shard exchange traffic (PR 9): shuffles pay a hash op (route
  /// choice) and row CPU (copy) per row plus a transfer charge per page;
  /// broadcasts skip the hash — the destination set is every shard.
  void ChargeExchange(int64_t rows, int64_t pages, bool broadcast) {
    if (broadcast) {
      counters_.rows_broadcast += rows;
    } else {
      counters_.rows_shuffled += rows;
      counters_.hash_ops += rows;
      counters_.cost_units += cost_model_.hash_op * rows;
    }
    counters_.rows_processed += rows;
    counters_.cost_units += cost_model_.row_cpu * rows +
                            cost_model_.exchange_page * pages;
    ApplyScheduledEvents();
  }

  // -- guardrails -----------------------------------------------------------
  /// Why execution was cooperatively cancelled (consumed by the engine's
  /// safe-plan retry path).
  struct GuardrailTrip {
    enum class Kind { kCardinalityFuse, kCostBudget };
    Kind kind = Kind::kCostBudget;
    int plan_node_id = -1;       ///< fuse trips only
    double estimated_rows = 0;   ///< fuse trips only
    int64_t actual_rows = 0;     ///< rows produced when the fuse blew
    double cost_at_trip = 0;
  };

  /// Aborts execution once the cost clock passes `units` (<= 0: unlimited).
  void set_cost_budget(double units) { cost_budget_ = units; }
  double cost_budget() const { return cost_budget_; }

  /// Arms a cardinality fuse: execution aborts when the operator for
  /// `plan_node_id` has produced more than `limit_rows`.
  void ArmFuse(int plan_node_id, double estimated_rows, int64_t limit_rows) {
    fuses_[plan_node_id] = Fuse{estimated_rows, limit_rows};
  }

  bool has_trip() const { return trip_ != nullptr; }
  const GuardrailTrip* trip() const { return trip_.get(); }

  // -- external cancellation and deadlines (PR 6) ---------------------------
  /// Attaches an external cancellation token (scheduler deadline enforcement
  /// and memory arbitration). Borrowed; must outlive this context.
  void set_cancel_token(const QueryCancelToken* token) {
    cancel_token_ = token;
  }
  const QueryCancelToken* cancel_token() const { return cancel_token_; }

  /// Deadline on the deterministic cost clock (<= 0: none). Unlike the cost
  /// budget this is not a guardrail: passing it yields a typed
  /// kDeadlineExceeded with no trip record, so the engine propagates the
  /// status instead of hedging with a safe-plan retry.
  void set_deadline_cost(double units) { deadline_cost_ = units; }
  double deadline_cost() const { return deadline_cost_; }

  /// Wall-clock deadline for real serving ($RQP_QUERY_DEADLINE_MS); checked
  /// at batch granularity in CheckGuardrails. Off the deterministic paths —
  /// benchmarks use cost-clock deadlines instead.
  void set_deadline_wall(std::chrono::steady_clock::time_point tp) {
    deadline_wall_ = tp;
    has_wall_deadline_ = true;
  }

  /// External-cancel poll shared by the serial and parallel paths. Returns
  /// the typed status carried by the token (or kDeadlineExceeded) and flips
  /// the worker-visible cancelled flag so morsel loops stop claiming.
  Status CheckExternalCancel() {
    if (cancel_token_ != nullptr && cancel_token_->cancelled()) {
      cancelled_.store(true, std::memory_order_relaxed);
      return cancel_token_->ToStatus();
    }
    if (deadline_cost_ > 0 && counters_.cost_units > deadline_cost_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return Status::DeadlineExceeded("query deadline (cost clock) exceeded");
    }
    if (has_wall_deadline_ &&
        std::chrono::steady_clock::now() > deadline_wall_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return Status::DeadlineExceeded("query deadline (wall clock) exceeded");
    }
    return Status::OK();
  }

  /// Cooperative cancellation point: operators call this once per batch (or
  /// chunk) and propagate the non-OK status up the tree. Cheap when nothing
  /// is armed (two branches).
  Status CheckGuardrails() {
    if (cancel_token_ != nullptr || deadline_cost_ > 0 ||
        has_wall_deadline_) {
      Status ext = CheckExternalCancel();
      if (!ext.ok()) return ext;
    }
    if (trip_ == nullptr && cost_budget_ > 0 &&
        counters_.cost_units > cost_budget_) {
      trip_ = std::make_unique<GuardrailTrip>();
      trip_->cost_at_trip = counters_.cost_units;
      cancelled_.store(true, std::memory_order_relaxed);
    }
    if (trip_ == nullptr) return Status::OK();
    if (trip_->kind == GuardrailTrip::Kind::kCardinalityFuse) {
      return Status::ResourceExhausted(
          "cardinality fuse tripped at plan node " +
          std::to_string(trip_->plan_node_id));
    }
    return Status::ResourceExhausted("query cost budget exceeded");
  }

  /// Called by Operator::CountProduced with the running production count;
  /// trips the node's fuse (if armed) when the count exceeds its limit.
  void ObserveProduced(int plan_node_id, int64_t rows) {
    if (trip_ != nullptr || fuses_.empty()) return;
    auto it = fuses_.find(plan_node_id);
    if (it == fuses_.end() || rows <= it->second.limit_rows) return;
    trip_ = std::make_unique<GuardrailTrip>();
    trip_->kind = GuardrailTrip::Kind::kCardinalityFuse;
    trip_->plan_node_id = plan_node_id;
    trip_->estimated_rows = it->second.estimated_rows;
    trip_->actual_rows = rows;
    trip_->cost_at_trip = counters_.cost_units;
    cancelled_.store(true, std::memory_order_relaxed);
  }

  // -- parallel execution (PR 3) --------------------------------------------
  // During a parallel phase, workers charge into thread-local ExecCounters
  // and flush through these methods at morsel boundaries (relaxed-contention
  // batching: one lock acquisition per morsel, not per charge). Outside
  // parallel phases the single-threaded Charge* methods above stay lock-free.

  /// True once a guardrail tripped (or a worker failed): workers poll this at
  /// morsel boundaries and stop claiming morsels. Trip *outcome* is
  /// deterministic (the same fuse/budget trips at every DOP); trip *timing*
  /// is not, which is fine because tripped attempts are discarded.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (cancel_token_ != nullptr && cancel_token_->cancelled());
  }
  /// Cooperative cancellation for worker-side failures (fault exhaustion,
  /// I/O errors): stops sibling workers at their next morsel boundary.
  void CancelParallel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Folds a worker's thread-local counter delta into the shared counters,
  /// applies clock-scheduled events (FMT memory schedule, fault-injected
  /// memory drops) against the advanced global clock, and checks the cost
  /// budget. The caller's delta must not be re-merged.
  void MergeWorkerCounters(const ExecCounters& delta) {
    std::lock_guard<std::mutex> lock(merge_mu_);
    counters_.Merge(delta);
    ApplyScheduledEvents();
    if (deadline_cost_ > 0 && counters_.cost_units > deadline_cost_) {
      // Deadline passed mid-phase: stop sibling workers now; the
      // coordinator's post-phase CheckGuardrails turns this into the typed
      // kDeadlineExceeded status (no trip record — deadlines never hedge).
      cancelled_.store(true, std::memory_order_relaxed);
    }
    if (trip_ == nullptr && cost_budget_ > 0 &&
        counters_.cost_units > cost_budget_) {
      trip_ = std::make_unique<GuardrailTrip>();
      trip_->cost_at_trip = counters_.cost_units;
      cancelled_.store(true, std::memory_order_relaxed);
    }
  }

  /// Thread-safe ObserveProduced: `rows` is the *total* produced so far for
  /// the node (workers accumulate a shared atomic total and report it here
  /// at flush boundaries, so fuse trips lag production by at most one morsel
  /// per worker — same batching tolerance as the serial per-batch check).
  void ObserveProducedParallel(int plan_node_id, int64_t rows) {
    std::lock_guard<std::mutex> lock(merge_mu_);
    ObserveProduced(plan_node_id, rows);
  }

  /// Records one finished parallel phase: `morsels` work units whose total
  /// cost exceeded the deterministic list-schedule makespan by `saved_units`
  /// (the work hidden by overlap; subtracted from cost_units to obtain the
  /// simulated elapsed time).
  void RecordParallelPhase(int64_t morsels, double saved_units) {
    std::lock_guard<std::mutex> lock(merge_mu_);
    counters_.morsels += morsels;
    ++counters_.parallel_phases;
    if (saved_units > 0) counters_.parallel_saved_units += saved_units;
  }

  /// Thread-safe IoMultiplier for worker-local charging. Fault windows are
  /// evaluated at `at_cost` — parallel phases pass the phase-start clock, so
  /// every morsel sees the same multiplier regardless of worker timing.
  double IoMultiplierAt(const std::string& table, double at_cost,
                        int64_t pages) {
    return faults_ == nullptr ? 1.0
                              : faults_->IoMultiplier(table, at_cost, pages);
  }

  /// Deterministic per-morsel transient-read fault point: the failure draw
  /// is keyed off (schedule seed, morsel id) and the window off the
  /// phase-start clock, so a parallel scan experiences identical faults at
  /// every DOP > 1 and on every replay, independent of worker scheduling.
  /// Backoff cost is returned for the worker's local accumulator instead of
  /// being charged globally.
  Status MaybeInjectMorselReadFault(const std::string& table,
                                    double phase_start_cost, int64_t morsel_id,
                                    double* backoff_cost) {
    *backoff_cost = 0;
    if (faults_ == nullptr) return Status::OK();
    const FaultInjector::ReadOutcome o =
        faults_->OnMorselReadAttempt(table, phase_start_cost, morsel_id);
    *backoff_cost = o.backoff_cost;
    if (o.exhausted) {
      return Status::ResourceExhausted("transient read failures on " + table +
                                       " outlasted the retry budget");
    }
    return Status::OK();
  }

  // -- fault injection -------------------------------------------------------
  /// Installs a fresh injector drawn from `schedule`. The injector is owned
  /// by this context; a retry attempt gets a new context and therefore
  /// re-arms the same schedule — every attempt experiences the identical
  /// environment, keeping chaos runs reproducible.
  void InstallFaults(const FaultSchedule& schedule) {
    faults_ = std::make_unique<FaultInjector>(schedule);
  }
  FaultInjector* faults() { return faults_.get(); }

  /// Transient-read fault point: scan operators call this before paying for
  /// a read on `table`. Retry backoff lands on the cost clock; returns
  /// ResourceExhausted when the bounded retries are used up.
  Status MaybeInjectReadFault(const std::string& table) {
    if (faults_ == nullptr) return Status::OK();
    const FaultInjector::ReadOutcome o =
        faults_->OnReadAttempt(table, counters_.cost_units);
    if (o.backoff_cost > 0) {
      counters_.cost_units += o.backoff_cost;
      ApplyScheduledEvents();
    }
    if (o.exhausted) {
      return Status::ResourceExhausted("transient read failures on " + table +
                                       " outlasted the retry budget");
    }
    return Status::OK();
  }

  // -- POP re-optimization mailbox ------------------------------------------
  /// Set by a CHECK operator when actual cardinality escapes its validity
  /// range. The engine aborts execution, re-optimizes with the corrected
  /// cardinality, and resumes from the materialized intermediate.
  struct ReoptRequest {
    int plan_node_id = -1;
    int64_t estimated_rows = 0;
    int64_t actual_rows = 0;
    std::vector<std::string> slots;
    std::shared_ptr<std::vector<RowBatch>> materialized;
  };

  bool has_reopt_request() const { return reopt_ != nullptr; }
  const ReoptRequest* reopt_request() const { return reopt_.get(); }
  void RaiseReopt(ReoptRequest req) {
    reopt_ = std::make_unique<ReoptRequest>(std::move(req));
  }
  void ClearReopt() { reopt_.reset(); }

  /// Actual output cardinalities keyed by plan-node id (filled by operators
  /// on Close; consumed by the Metric1/LEO feedback machinery).
  std::map<int, int64_t>& actual_cardinalities() { return actuals_; }

 private:
  struct Fuse {
    double estimated_rows = 0;
    int64_t limit_rows = 0;
  };

  /// Applies clock-scheduled environment changes: the FMT memory schedule
  /// plus any pending fault-injected memory drops.
  void ApplyScheduledEvents() {
    while (next_schedule_ < memory_schedule_.size() &&
           counters_.cost_units >= memory_schedule_[next_schedule_].first) {
      memory_->set_capacity(memory_schedule_[next_schedule_].second);
      ++next_schedule_;
    }
    if (faults_ != nullptr) {
      int64_t capacity;
      while (faults_->NextMemoryDrop(counters_.cost_units, &capacity)) {
        memory_->set_capacity(capacity);
      }
    }
  }

  double IoMultiplier(const std::string& table, int64_t pages) {
    return faults_ == nullptr
               ? 1.0
               : faults_->IoMultiplier(table, counters_.cost_units, pages);
  }

  CostModel cost_model_;
  bool vectorized_ = true;
  bool late_materialize_ = true;
  SimdLevel simd_ = SimdLevel::kScalar;
  ExecCounters counters_;
  MemoryBroker own_memory_;
  MemoryBroker* memory_;
  std::vector<std::pair<double, int64_t>> memory_schedule_;
  size_t next_schedule_ = 0;
  std::unique_ptr<ReoptRequest> reopt_;
  std::map<int, int64_t> actuals_;
  double cost_budget_ = 0;
  const QueryCancelToken* cancel_token_ = nullptr;
  double deadline_cost_ = 0;
  std::chrono::steady_clock::time_point deadline_wall_{};
  bool has_wall_deadline_ = false;
  std::map<int, Fuse> fuses_;
  std::unique_ptr<GuardrailTrip> trip_;
  std::atomic<bool> cancelled_{false};
  std::mutex merge_mu_;  ///< guards counters_/trip_ during parallel phases
  std::unique_ptr<FaultInjector> faults_;
  std::string spill_dir_;
  std::string query_id_ = "q0";
  std::unique_ptr<SpillManager> spill_;
};

}  // namespace rqp

#endif  // RQP_EXEC_CONTEXT_H_
