#ifndef RQP_EXEC_CONTEXT_H_
#define RQP_EXEC_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "util/status.h"

namespace rqp {

/// Simulated cost-model constants (in abstract "cost units"; one unit = one
/// sequential page read). All experiment "response times" are expressed in
/// these units, making every table in the harness exactly reproducible —
/// the substitution for the authors' wall-clock measurements documented in
/// DESIGN.md.
struct CostModel {
  double seq_page_read = 1.0;    ///< sequential page read
  double random_page_read = 1.5; ///< random page fetch (index probe target)
  double index_descend = 0.5;    ///< B-tree root-to-leaf traversal
  double row_cpu = 1.0 / 512;    ///< per-row CPU work (predicate, copy)
  double hash_op = 1.0 / 256;    ///< hash probe per row
  double hash_build_factor = 1.5; ///< build-row cost relative to a probe
  double compare_op = 1.0 / 512; ///< comparison (sort/merge) per op
  double spill_page_write = 1.0; ///< spill partition write per page
  double spill_page_read = 1.0;  ///< spill partition re-read per page
};

/// Execution counters; the deterministic clock plus diagnostics.
struct ExecCounters {
  double cost_units = 0;
  int64_t pages_read = 0;
  int64_t random_reads = 0;
  int64_t rows_processed = 0;
  int64_t hash_ops = 0;
  int64_t compare_ops = 0;
  int64_t spill_pages = 0;
  int64_t predicate_evals = 0;
};

/// Grants query memory (in pages). Capacity may be changed while queries
/// run (the FMT fluctuating-memory test); operators observe the new limit
/// at their next phase boundary when the dynamic policy is enabled.
class MemoryBroker {
 public:
  explicit MemoryBroker(int64_t capacity_pages = 1 << 20)
      : capacity_(capacity_pages) {}

  int64_t capacity() const { return capacity_; }
  int64_t used() const { return used_; }
  int64_t available() const { return capacity_ > used_ ? capacity_ - used_ : 0; }

  /// Changes capacity (may drop below current usage; new grants shrink).
  void set_capacity(int64_t pages) { capacity_ = pages; }

  /// Grants up to `requested` pages, at least 1. Returns the grant size.
  int64_t Grant(int64_t requested) {
    const int64_t g = std::max<int64_t>(1, std::min(requested, available()));
    used_ += g;
    return g;
  }
  void Release(int64_t pages) { used_ -= std::min(pages, used_); }

 private:
  int64_t capacity_;
  int64_t used_ = 0;
};

/// Per-query execution context: cost clock, memory, and the re-optimization
/// mailbox used by POP CHECK operators.
class ExecContext {
 public:
  explicit ExecContext(MemoryBroker* memory = nullptr)
      : memory_(memory ? memory : &own_memory_) {}

  const CostModel& cost_model() const { return cost_model_; }
  void set_cost_model(const CostModel& cm) { cost_model_ = cm; }

  ExecCounters& counters() { return counters_; }
  const ExecCounters& counters() const { return counters_; }
  double cost() const { return counters_.cost_units; }

  MemoryBroker* memory() { return memory_; }

  /// FMT (fluctuating memory test) support: once the simulated clock passes
  /// `threshold` cost units, the broker capacity is set to the paired
  /// value. Thresholds must be ascending. Operators with dynamic memory
  /// policies observe the change at their next grant.
  void SetMemorySchedule(std::vector<std::pair<double, int64_t>> schedule) {
    memory_schedule_ = std::move(schedule);
    next_schedule_ = 0;
  }

  // -- charging helpers ----------------------------------------------------
  void ChargeSeqPages(int64_t pages) {
    counters_.pages_read += pages;
    counters_.cost_units += cost_model_.seq_page_read * pages;
    ApplyMemorySchedule();
  }
  void ChargeRandomReads(int64_t reads) {
    counters_.random_reads += reads;
    counters_.cost_units += cost_model_.random_page_read * reads;
  }
  void ChargeIndexDescend(int64_t descends = 1) {
    counters_.cost_units += cost_model_.index_descend * descends;
  }
  void ChargeRowCpu(int64_t rows) {
    counters_.rows_processed += rows;
    counters_.cost_units += cost_model_.row_cpu * rows;
  }
  void ChargeHashOps(int64_t ops) {
    counters_.hash_ops += ops;
    counters_.cost_units += cost_model_.hash_op * ops;
  }
  void ChargeCompareOps(int64_t ops) {
    counters_.compare_ops += ops;
    counters_.cost_units += cost_model_.compare_op * ops;
  }
  void ChargeSpill(int64_t pages_written, int64_t pages_reread) {
    counters_.spill_pages += pages_written;
    counters_.cost_units += cost_model_.spill_page_write * pages_written +
                            cost_model_.spill_page_read * pages_reread;
    ApplyMemorySchedule();
  }
  void ChargePredicateEvals(int64_t evals) {
    counters_.predicate_evals += evals;
    counters_.cost_units += cost_model_.row_cpu * evals;
    ApplyMemorySchedule();
  }

  // -- POP re-optimization mailbox ------------------------------------------
  /// Set by a CHECK operator when actual cardinality escapes its validity
  /// range. The engine aborts execution, re-optimizes with the corrected
  /// cardinality, and resumes from the materialized intermediate.
  struct ReoptRequest {
    int plan_node_id = -1;
    int64_t estimated_rows = 0;
    int64_t actual_rows = 0;
    std::vector<std::string> slots;
    std::shared_ptr<std::vector<RowBatch>> materialized;
  };

  bool has_reopt_request() const { return reopt_ != nullptr; }
  const ReoptRequest* reopt_request() const { return reopt_.get(); }
  void RaiseReopt(ReoptRequest req) {
    reopt_ = std::make_unique<ReoptRequest>(std::move(req));
  }
  void ClearReopt() { reopt_.reset(); }

  /// Actual output cardinalities keyed by plan-node id (filled by operators
  /// on Close; consumed by the Metric1/LEO feedback machinery).
  std::map<int, int64_t>& actual_cardinalities() { return actuals_; }

 private:
  void ApplyMemorySchedule() {
    while (next_schedule_ < memory_schedule_.size() &&
           counters_.cost_units >= memory_schedule_[next_schedule_].first) {
      memory_->set_capacity(memory_schedule_[next_schedule_].second);
      ++next_schedule_;
    }
  }

  CostModel cost_model_;
  ExecCounters counters_;
  MemoryBroker own_memory_;
  MemoryBroker* memory_;
  std::vector<std::pair<double, int64_t>> memory_schedule_;
  size_t next_schedule_ = 0;
  std::unique_ptr<ReoptRequest> reopt_;
  std::map<int, int64_t> actuals_;
};

}  // namespace rqp

#endif  // RQP_EXEC_CONTEXT_H_
