#include "exec/filter_ops.h"

#include <algorithm>
#include <numeric>

#include "expr/rewriter.h"

namespace rqp {

Status FilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  auto compiled =
      CompiledPredicate::Compile(predicate_, child_->output_slots());
  if (!compiled.ok()) return compiled.status();
  compiled_ = std::move(compiled.value());
  program_.reset();
  vectorized_ = ctx->vectorized();
  if (vectorized_) {
    // Unflattenable predicates (unbound parameters) fall back to scalar.
    auto program =
        PredicateProgram::Compile(predicate_, child_->output_slots());
    if (program.ok()) {
      program_ = std::move(program.value());
    } else {
      vectorized_ = false;
    }
  }
  return Status::OK();
}

Status FilterOp::Next(RowBatch* out) {
  out->Reset(output_slots().size());
  while (!out->full()) {
    RQP_RETURN_IF_ERROR(child_->Next(&in_));
    if (in_.empty()) break;
    if (vectorized_) {
      // One eval charge per input batch, flushed right where the scalar
      // path's per-row charges would all have landed anyway (between the
      // two child Next calls) — identical clock at every external charge
      // point (DESIGN.md §10).
      ctx_->ChargePredicateEvals(static_cast<int64_t>(in_.num_rows()));
      const size_t ncols = in_.num_cols();
      col_ptrs_.resize(ncols);
      const int64_t* base = in_.data().data();
      for (size_t c = 0; c < ncols; ++c) col_ptrs_[c] = base + c;
      program_->BuildSelection(col_ptrs_.data(), /*stride=*/ncols,
                               in_.num_rows(), &sel_);
      for (const uint32_t r : sel_) out->AppendRow(in_.row(r));
    } else {
      for (size_t r = 0; r < in_.num_rows(); ++r) {
        ctx_->ChargePredicateEvals(1);
        if (compiled_->Eval(in_.row(r))) out->AppendRow(in_.row(r));
      }
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

Status ProjectOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  mapping_.clear();
  const auto& in_slots = child_->output_slots();
  for (const auto& s : slots_) {
    auto it = std::find(in_slots.begin(), in_slots.end(), s);
    if (it == in_slots.end()) {
      return Status::NotFound("projection slot '" + s + "' not in input");
    }
    mapping_.push_back(static_cast<size_t>(it - in_slots.begin()));
  }
  return Status::OK();
}

Status ProjectOp::Next(RowBatch* out) {
  out->Reset(slots_.size());
  RowBatch in;
  RQP_RETURN_IF_ERROR(child_->Next(&in));
  std::vector<int64_t> row(mapping_.size());
  for (size_t r = 0; r < in.num_rows(); ++r) {
    const int64_t* src = in.row(r);
    for (size_t c = 0; c < mapping_.size(); ++c) row[c] = src[mapping_[c]];
    out->AppendRow(row);
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(in.num_rows()));
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

MapOp::MapOp(OperatorPtr child, std::vector<DerivedColumn> derived)
    : child_(std::move(child)), derived_(std::move(derived)) {
  slots_ = child_->output_slots();
  for (const auto& d : derived_) slots_.push_back(d.name);
}

Status MapOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  slots_ = child_->output_slots();
  for (const auto& d : derived_) slots_.push_back(d.name);
  compiled_.clear();
  programs_.clear();
  vectorized_ = ctx->vectorized();
  const auto& in_slots = child_->output_slots();
  for (const auto& d : derived_) {
    const ExprPtr folded = FoldExpr(d.expr);
    auto c = CompiledExpr::Compile(folded, in_slots);
    if (!c.ok()) return c.status();
    compiled_.push_back(std::move(c.value()));
    if (vectorized_) {
      auto p = ExprProgram::Compile(folded, in_slots);
      if (p.ok()) {
        programs_.push_back(std::move(p.value()));
      } else {
        vectorized_ = false;  // whole operator falls back to scalar
      }
    }
  }
  return Status::OK();
}

Status MapOp::Next(RowBatch* out) {
  out->Reset(slots_.size());
  RQP_RETURN_IF_ERROR(child_->Next(&in_));
  const size_t n = in_.num_rows();
  const size_t width = in_.num_cols();
  // Whole-batch eval charge, flushed before any evaluation in BOTH modes:
  // the clock (and thus guardrail/fault trigger points) agrees between
  // modes even when an expression errors mid-batch.
  if (n > 0 && !derived_.empty()) {
    ctx_->ChargePredicateEvals(static_cast<int64_t>(n * derived_.size()));
  }
  std::vector<int64_t> row(slots_.size());
  if (vectorized_ && n > 0) {
    col_ptrs_.resize(width);
    const int64_t* base = in_.data().data();
    for (size_t c = 0; c < width; ++c) col_ptrs_[c] = base + c;
    derived_vals_.resize(programs_.size());
    for (size_t d = 0; d < programs_.size(); ++d) {
      derived_vals_[d].resize(n);
      RQP_RETURN_IF_ERROR(programs_[d].EvalDense(col_ptrs_.data(), width, n,
                                                 derived_vals_[d].data(),
                                                 &scratch_));
    }
    for (size_t r = 0; r < n; ++r) {
      const int64_t* src = in_.row(r);
      std::copy(src, src + width, row.begin());
      for (size_t d = 0; d < derived_.size(); ++d) {
        row[width + d] = derived_vals_[d][r];
      }
      out->AppendRow(row);
    }
  } else {
    for (size_t r = 0; r < n; ++r) {
      const int64_t* src = in_.row(r);
      std::copy(src, src + width, row.begin());
      for (size_t d = 0; d < compiled_.size(); ++d) {
        RQP_RETURN_IF_ERROR(compiled_[d].Eval(src, &row[width + d]));
      }
      out->AppendRow(row);
    }
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(n));
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

Status AdaptiveFilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  compiled_.clear();
  for (const auto& p : predicates_) {
    auto c = CompiledPredicate::Compile(p, child_->output_slots());
    if (!c.ok()) return c.status();
    compiled_.push_back(std::move(c.value()));
  }
  order_.resize(compiled_.size());
  std::iota(order_.begin(), order_.end(), 0);
  evals_.assign(compiled_.size(), 1.0);   // Laplace prior
  passes_.assign(compiled_.size(), 0.5);
  rows_since_reorder_ = 0;
  return Status::OK();
}

void AdaptiveFilterOp::MaybeReorder() {
  if (!options_.adaptive) return;
  if (rows_since_reorder_ < options_.reorder_interval) return;
  rows_since_reorder_ = 0;
  // Rank by observed pass rate ascending: evaluate the most selective
  // predicate first (all predicates have unit cost here, so A-Greedy's
  // rank (1 - selectivity)/cost ordering reduces to pass-rate order).
  std::stable_sort(order_.begin(), order_.end(), [this](size_t a, size_t b) {
    return passes_[a] / evals_[a] < passes_[b] / evals_[b];
  });
  for (size_t i = 0; i < evals_.size(); ++i) {
    evals_[i] *= options_.decay;
    passes_[i] *= options_.decay;
  }
}

Status AdaptiveFilterOp::Next(RowBatch* out) {
  // Stays scalar under the vectorized gate: its whole point is per-row
  // adaptive predicate ordering with per-predicate pass-rate statistics.
  out->Reset(output_slots().size());
  while (!out->full()) {
    RQP_RETURN_IF_ERROR(child_->Next(&in_));
    if (in_.empty()) break;
    for (size_t r = 0; r < in_.num_rows(); ++r) {
      bool pass = true;
      for (size_t k : order_) {
        ctx_->ChargePredicateEvals(1);
        evals_[k] += 1.0;
        const bool ok = compiled_[k].Eval(in_.row(r));
        if (ok) passes_[k] += 1.0;
        if (!ok) { pass = false; break; }
      }
      if (pass) out->AppendRow(in_.row(r));
      ++rows_since_reorder_;
      MaybeReorder();
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

}  // namespace rqp
