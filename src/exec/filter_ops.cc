#include "exec/filter_ops.h"

#include <algorithm>
#include <numeric>

#include "expr/rewriter.h"

namespace rqp {

Status FilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  auto compiled =
      CompiledPredicate::Compile(predicate_, child_->output_slots());
  if (!compiled.ok()) return compiled.status();
  compiled_ = std::move(compiled.value());
  program_.reset();
  vectorized_ = ctx->vectorized();
  if (vectorized_) {
    // Unflattenable predicates (unbound parameters) fall back to scalar.
    auto program =
        PredicateProgram::Compile(predicate_, child_->output_slots());
    if (program.ok()) {
      program_ = std::move(program.value());
    } else {
      vectorized_ = false;
    }
  }
  // Columnar pass-through needs a child whose view bases are table storage
  // (stable across fetches): the filter packs survivors from several child
  // batches into one output batch over a single set of bases.
  columnar_ = vectorized_ && ctx->late_materialize() &&
              child_->supports_columnar() && child_->stable_columnar_views();
  return Status::OK();
}

// Columnar filter: the child's column views pass through untouched and only
// the selection is refined — dense input runs the fused iota+compact
// (BuildSelection, the SIMD compare+compact entry point) and selective input
// is refined in place over the absolute row ids. No row is ever copied, and
// the charge sequence (one whole-batch eval charge between child fetches)
// matches the row-major vectorized path exactly.
Status FilterOp::NextColumnar(ColumnBatch* out) {
  const size_t ncols = output_slots().size();
  out->Reset(ncols);
  out->set_stable_views(true);
  out->UseSelection();
  std::vector<uint32_t>& osel = out->mutable_sel();
  bool bases_set = false;
  while (out->num_rows() < kBatchRows) {
    RQP_RETURN_IF_ERROR(child_->NextColumnar(&in_col_));
    if (in_col_.empty()) break;
    ctx_->counters().transposes_elided +=
        static_cast<int64_t>(in_col_.num_rows());
    ctx_->ChargePredicateEvals(static_cast<int64_t>(in_col_.num_rows()));
    if (!bases_set) {
      for (size_t c = 0; c < ncols; ++c) out->SetView(c, in_col_.col(c).base);
      bases_set = true;
    }
    col_ptrs_.resize(ncols);
    if (!in_col_.has_selection()) {
      for (size_t c = 0; c < ncols; ++c) col_ptrs_[c] = in_col_.DensePtr(c);
      program_->BuildSelection(col_ptrs_.data(), /*stride=*/1,
                               in_col_.num_rows(), &sel_, ctx_->simd());
      const uint32_t base = static_cast<uint32_t>(in_col_.phys_begin());
      for (const uint32_t r : sel_) osel.push_back(base + r);
      out->set_num_rows(out->num_rows() + sel_.size());
    } else {
      // Selective input: bases are absolute, so the child's row ids feed
      // straight into FilterSelection at stride 1.
      for (size_t c = 0; c < ncols; ++c) col_ptrs_[c] = in_col_.col(c).base;
      sel_ = in_col_.sel();
      program_->FilterSelection(col_ptrs_.data(), /*stride=*/1, &sel_);
      osel.insert(osel.end(), sel_.begin(), sel_.end());
      out->set_num_rows(out->num_rows() + sel_.size());
    }
  }
  CountProducedRows(ctx_, static_cast<int64_t>(out->num_rows()),
                    /*eof=*/out->empty());
  return Status::OK();
}

Status FilterOp::Next(RowBatch* out) {
  if (columnar_) {
    RQP_RETURN_IF_ERROR(NextColumnar(&col_scratch_));
    out->Reset(output_slots().size());
    col_scratch_.MaterializeInto(out, ctx_);
    return Status::OK();
  }
  out->Reset(output_slots().size());
  while (!out->full()) {
    RQP_RETURN_IF_ERROR(child_->Next(&in_));
    if (in_.empty()) break;
    if (vectorized_) {
      // One eval charge per input batch, flushed right where the scalar
      // path's per-row charges would all have landed anyway (between the
      // two child Next calls) — identical clock at every external charge
      // point (DESIGN.md §10).
      ctx_->ChargePredicateEvals(static_cast<int64_t>(in_.num_rows()));
      const size_t ncols = in_.num_cols();
      col_ptrs_.resize(ncols);
      const int64_t* base = in_.data().data();
      for (size_t c = 0; c < ncols; ++c) col_ptrs_[c] = base + c;
      program_->BuildSelection(col_ptrs_.data(), /*stride=*/ncols,
                               in_.num_rows(), &sel_);
      for (const uint32_t r : sel_) out->AppendRow(in_.row(r));
    } else {
      for (size_t r = 0; r < in_.num_rows(); ++r) {
        ctx_->ChargePredicateEvals(1);
        if (compiled_->Eval(in_.row(r))) out->AppendRow(in_.row(r));
      }
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

Status ProjectOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  mapping_.clear();
  const auto& in_slots = child_->output_slots();
  for (const auto& s : slots_) {
    auto it = std::find(in_slots.begin(), in_slots.end(), s);
    if (it == in_slots.end()) {
      return Status::NotFound("projection slot '" + s + "' not in input");
    }
    mapping_.push_back(static_cast<size_t>(it - in_slots.begin()));
  }
  return Status::OK();
}

Status ProjectOp::Next(RowBatch* out) {
  out->Reset(slots_.size());
  RowBatch in;
  RQP_RETURN_IF_ERROR(child_->Next(&in));
  std::vector<int64_t> row(mapping_.size());
  for (size_t r = 0; r < in.num_rows(); ++r) {
    const int64_t* src = in.row(r);
    for (size_t c = 0; c < mapping_.size(); ++c) row[c] = src[mapping_[c]];
    out->AppendRow(row);
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(in.num_rows()));
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

MapOp::MapOp(OperatorPtr child, std::vector<DerivedColumn> derived)
    : child_(std::move(child)), derived_(std::move(derived)) {
  slots_ = child_->output_slots();
  for (const auto& d : derived_) slots_.push_back(d.name);
}

Status MapOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  slots_ = child_->output_slots();
  for (const auto& d : derived_) slots_.push_back(d.name);
  compiled_.clear();
  programs_.clear();
  vectorized_ = ctx->vectorized();
  const auto& in_slots = child_->output_slots();
  for (const auto& d : derived_) {
    const ExprPtr folded = FoldExpr(d.expr);
    auto c = CompiledExpr::Compile(folded, in_slots);
    if (!c.ok()) return c.status();
    compiled_.push_back(std::move(c.value()));
    if (vectorized_) {
      auto p = ExprProgram::Compile(folded, in_slots);
      if (p.ok()) {
        programs_.push_back(std::move(p.value()));
      } else {
        vectorized_ = false;  // whole operator falls back to scalar
      }
    }
  }
  columnar_ = vectorized_ && ctx->late_materialize() &&
              child_->supports_columnar() && child_->stable_columnar_views();
  return Status::OK();
}

// Columnar map: input views pass through and each derived column is computed
// stride-free straight off the child's column storage — dense input runs
// EvalDense at stride 1 over the view range, selective input runs
// EvalSelection over the absolute row ids (which gathers each referenced
// slot once, then evaluates stride-1). The input rows themselves are never
// copied. Charge order matches the row-major path: whole-batch eval charge
// before evaluation, per-row CPU after.
Status MapOp::NextColumnar(ColumnBatch* out) {
  RQP_RETURN_IF_ERROR(child_->NextColumnar(&in_col_));
  const size_t n = in_col_.num_rows();
  const size_t width = in_col_.num_cols();
  ctx_->counters().transposes_elided += static_cast<int64_t>(n);
  if (n > 0 && !derived_.empty()) {
    ctx_->ChargePredicateEvals(static_cast<int64_t>(n * derived_.size()));
  }
  out->Reset(slots_.size());
  for (size_t c = 0; c < width; ++c) out->SetView(c, in_col_.col(c).base);
  if (in_col_.has_selection()) {
    out->UseSelection();
    out->mutable_sel() = in_col_.sel();
    out->set_num_rows(n);
  } else {
    out->SetDense(in_col_.phys_begin(), n);
  }
  if (n > 0) {
    col_ptrs_.resize(width);
    if (in_col_.has_selection()) {
      for (size_t c = 0; c < width; ++c) col_ptrs_[c] = in_col_.col(c).base;
      for (size_t d = 0; d < programs_.size(); ++d) {
        std::vector<int64_t>& flat = out->col(width + d).flat;
        flat.resize(n);
        RQP_RETURN_IF_ERROR(programs_[d].EvalSelection(
            col_ptrs_.data(), /*stride=*/1, in_col_.sel(), flat.data(),
            &scratch_));
      }
    } else {
      for (size_t c = 0; c < width; ++c) col_ptrs_[c] = in_col_.DensePtr(c);
      for (size_t d = 0; d < programs_.size(); ++d) {
        std::vector<int64_t>& flat = out->col(width + d).flat;
        flat.resize(n);
        RQP_RETURN_IF_ERROR(programs_[d].EvalDense(col_ptrs_.data(),
                                                   /*stride=*/1, n,
                                                   flat.data(), &scratch_));
      }
    }
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(n));
  CountProducedRows(ctx_, static_cast<int64_t>(n), /*eof=*/out->empty());
  return Status::OK();
}

Status MapOp::Next(RowBatch* out) {
  if (columnar_) {
    RQP_RETURN_IF_ERROR(NextColumnar(&col_scratch_));
    out->Reset(slots_.size());
    col_scratch_.MaterializeInto(out, ctx_);
    return Status::OK();
  }
  out->Reset(slots_.size());
  RQP_RETURN_IF_ERROR(child_->Next(&in_));
  const size_t n = in_.num_rows();
  const size_t width = in_.num_cols();
  // Whole-batch eval charge, flushed before any evaluation in BOTH modes:
  // the clock (and thus guardrail/fault trigger points) agrees between
  // modes even when an expression errors mid-batch.
  if (n > 0 && !derived_.empty()) {
    ctx_->ChargePredicateEvals(static_cast<int64_t>(n * derived_.size()));
  }
  std::vector<int64_t> row(slots_.size());
  if (vectorized_ && n > 0) {
    col_ptrs_.resize(width);
    const int64_t* base = in_.data().data();
    for (size_t c = 0; c < width; ++c) col_ptrs_[c] = base + c;
    derived_vals_.resize(programs_.size());
    for (size_t d = 0; d < programs_.size(); ++d) {
      derived_vals_[d].resize(n);
      RQP_RETURN_IF_ERROR(programs_[d].EvalDense(col_ptrs_.data(), width, n,
                                                 derived_vals_[d].data(),
                                                 &scratch_));
    }
    for (size_t r = 0; r < n; ++r) {
      const int64_t* src = in_.row(r);
      std::copy(src, src + width, row.begin());
      for (size_t d = 0; d < derived_.size(); ++d) {
        row[width + d] = derived_vals_[d][r];
      }
      out->AppendRow(row);
    }
  } else {
    for (size_t r = 0; r < n; ++r) {
      const int64_t* src = in_.row(r);
      std::copy(src, src + width, row.begin());
      for (size_t d = 0; d < compiled_.size(); ++d) {
        RQP_RETURN_IF_ERROR(compiled_[d].Eval(src, &row[width + d]));
      }
      out->AppendRow(row);
    }
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(n));
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

Status AdaptiveFilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  compiled_.clear();
  for (const auto& p : predicates_) {
    auto c = CompiledPredicate::Compile(p, child_->output_slots());
    if (!c.ok()) return c.status();
    compiled_.push_back(std::move(c.value()));
  }
  order_.resize(compiled_.size());
  std::iota(order_.begin(), order_.end(), 0);
  evals_.assign(compiled_.size(), 1.0);   // Laplace prior
  passes_.assign(compiled_.size(), 0.5);
  rows_since_reorder_ = 0;
  return Status::OK();
}

void AdaptiveFilterOp::MaybeReorder() {
  if (!options_.adaptive) return;
  if (rows_since_reorder_ < options_.reorder_interval) return;
  rows_since_reorder_ = 0;
  // Rank by observed pass rate ascending: evaluate the most selective
  // predicate first (all predicates have unit cost here, so A-Greedy's
  // rank (1 - selectivity)/cost ordering reduces to pass-rate order).
  std::stable_sort(order_.begin(), order_.end(), [this](size_t a, size_t b) {
    return passes_[a] / evals_[a] < passes_[b] / evals_[b];
  });
  for (size_t i = 0; i < evals_.size(); ++i) {
    evals_[i] *= options_.decay;
    passes_[i] *= options_.decay;
  }
}

Status AdaptiveFilterOp::Next(RowBatch* out) {
  // Stays scalar under the vectorized gate: its whole point is per-row
  // adaptive predicate ordering with per-predicate pass-rate statistics.
  out->Reset(output_slots().size());
  while (!out->full()) {
    RQP_RETURN_IF_ERROR(child_->Next(&in_));
    if (in_.empty()) break;
    for (size_t r = 0; r < in_.num_rows(); ++r) {
      bool pass = true;
      for (size_t k : order_) {
        ctx_->ChargePredicateEvals(1);
        evals_[k] += 1.0;
        const bool ok = compiled_[k].Eval(in_.row(r));
        if (ok) passes_[k] += 1.0;
        if (!ok) { pass = false; break; }
      }
      if (pass) out->AppendRow(in_.row(r));
      ++rows_since_reorder_;
      MaybeReorder();
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

}  // namespace rqp
