#include "exec/filter_ops.h"

#include <algorithm>
#include <numeric>

namespace rqp {

Status FilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  auto compiled =
      CompiledPredicate::Compile(predicate_, child_->output_slots());
  if (!compiled.ok()) return compiled.status();
  compiled_ = std::move(compiled.value());
  program_.reset();
  vectorized_ = ctx->vectorized();
  if (vectorized_) {
    // Unflattenable predicates (unbound parameters) fall back to scalar.
    auto program =
        PredicateProgram::Compile(predicate_, child_->output_slots());
    if (program.ok()) {
      program_ = std::move(program.value());
    } else {
      vectorized_ = false;
    }
  }
  return Status::OK();
}

Status FilterOp::Next(RowBatch* out) {
  out->Reset(output_slots().size());
  while (!out->full()) {
    RQP_RETURN_IF_ERROR(child_->Next(&in_));
    if (in_.empty()) break;
    if (vectorized_) {
      // One eval charge per input batch, flushed right where the scalar
      // path's per-row charges would all have landed anyway (between the
      // two child Next calls) — identical clock at every external charge
      // point (DESIGN.md §10).
      ctx_->ChargePredicateEvals(static_cast<int64_t>(in_.num_rows()));
      const size_t ncols = in_.num_cols();
      col_ptrs_.resize(ncols);
      const int64_t* base = in_.data().data();
      for (size_t c = 0; c < ncols; ++c) col_ptrs_[c] = base + c;
      program_->BuildSelection(col_ptrs_.data(), /*stride=*/ncols,
                               in_.num_rows(), &sel_);
      for (const uint32_t r : sel_) out->AppendRow(in_.row(r));
    } else {
      for (size_t r = 0; r < in_.num_rows(); ++r) {
        ctx_->ChargePredicateEvals(1);
        if (compiled_->Eval(in_.row(r))) out->AppendRow(in_.row(r));
      }
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

Status ProjectOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  mapping_.clear();
  const auto& in_slots = child_->output_slots();
  for (const auto& s : slots_) {
    auto it = std::find(in_slots.begin(), in_slots.end(), s);
    if (it == in_slots.end()) {
      return Status::NotFound("projection slot '" + s + "' not in input");
    }
    mapping_.push_back(static_cast<size_t>(it - in_slots.begin()));
  }
  return Status::OK();
}

Status ProjectOp::Next(RowBatch* out) {
  out->Reset(slots_.size());
  RowBatch in;
  RQP_RETURN_IF_ERROR(child_->Next(&in));
  std::vector<int64_t> row(mapping_.size());
  for (size_t r = 0; r < in.num_rows(); ++r) {
    const int64_t* src = in.row(r);
    for (size_t c = 0; c < mapping_.size(); ++c) row[c] = src[mapping_[c]];
    out->AppendRow(row);
  }
  ctx_->ChargeRowCpu(static_cast<int64_t>(in.num_rows()));
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

Status AdaptiveFilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  ResetCount();
  RQP_RETURN_IF_ERROR(child_->Open(ctx));
  compiled_.clear();
  for (const auto& p : predicates_) {
    auto c = CompiledPredicate::Compile(p, child_->output_slots());
    if (!c.ok()) return c.status();
    compiled_.push_back(std::move(c.value()));
  }
  order_.resize(compiled_.size());
  std::iota(order_.begin(), order_.end(), 0);
  evals_.assign(compiled_.size(), 1.0);   // Laplace prior
  passes_.assign(compiled_.size(), 0.5);
  rows_since_reorder_ = 0;
  return Status::OK();
}

void AdaptiveFilterOp::MaybeReorder() {
  if (!options_.adaptive) return;
  if (rows_since_reorder_ < options_.reorder_interval) return;
  rows_since_reorder_ = 0;
  // Rank by observed pass rate ascending: evaluate the most selective
  // predicate first (all predicates have unit cost here, so A-Greedy's
  // rank (1 - selectivity)/cost ordering reduces to pass-rate order).
  std::stable_sort(order_.begin(), order_.end(), [this](size_t a, size_t b) {
    return passes_[a] / evals_[a] < passes_[b] / evals_[b];
  });
  for (size_t i = 0; i < evals_.size(); ++i) {
    evals_[i] *= options_.decay;
    passes_[i] *= options_.decay;
  }
}

Status AdaptiveFilterOp::Next(RowBatch* out) {
  // Stays scalar under the vectorized gate: its whole point is per-row
  // adaptive predicate ordering with per-predicate pass-rate statistics.
  out->Reset(output_slots().size());
  while (!out->full()) {
    RQP_RETURN_IF_ERROR(child_->Next(&in_));
    if (in_.empty()) break;
    for (size_t r = 0; r < in_.num_rows(); ++r) {
      bool pass = true;
      for (size_t k : order_) {
        ctx_->ChargePredicateEvals(1);
        evals_[k] += 1.0;
        const bool ok = compiled_[k].Eval(in_.row(r));
        if (ok) passes_[k] += 1.0;
        if (!ok) { pass = false; break; }
      }
      if (pass) out->AppendRow(in_.row(r));
      ++rows_since_reorder_;
      MaybeReorder();
    }
  }
  CountProduced(ctx_, *out, /*eof=*/out->empty());
  return Status::OK();
}

}  // namespace rqp
