#ifndef RQP_EXEC_SORT_AGG_OPS_H_
#define RQP_EXEC_SORT_AGG_OPS_H_

#include <map>
#include <string>
#include <vector>

#include "exec/join_ops.h"
#include "exec/operator.h"

namespace rqp {

/// Blocking sort on one key slot (ascending). When the memory grant is
/// smaller than the input, external merge passes are charged: each extra
/// pass re-reads and re-writes the whole input once. Supports the dynamic
/// "grow & shrink" policy: with `dynamic_memory`, the grant is re-negotiated
/// per merge pass, so a mid-query capacity change (the FMT test) changes
/// the number of passes instead of failing or thrashing.
class SortOp : public Operator {
 public:
  struct Options {
    bool dynamic_memory = true;
    int merge_fanin = 8;  ///< runs merged per external pass
  };

  SortOp(OperatorPtr child, std::string key_slot, Options options);
  SortOp(OperatorPtr child, std::string key_slot)
      : SortOp(std::move(child), std::move(key_slot), Options()) {}

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return child_->output_slots();
  }
  std::string name() const override { return "Sort(" + key_ + ")"; }

  int external_passes() const { return external_passes_; }

 private:
  OperatorPtr child_;
  std::string key_;
  Options options_;
  size_t key_idx_ = 0;
  RowBuffer rows_;
  std::vector<size_t> order_;
  size_t next_ = 0;
  int external_passes_ = 0;
  ExecContext* ctx_ = nullptr;
};

/// Aggregate functions.
enum class AggFn { kCount, kSum, kMin, kMax };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string slot;  ///< input slot (ignored for COUNT)
  std::string output_name;
};

/// Hash aggregation on zero or more group-by slots.
class HashAggOp : public Operator {
 public:
  HashAggOp(OperatorPtr child, std::vector<std::string> group_slots,
            std::vector<AggSpec> aggregates);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "HashAgg"; }

 private:
  OperatorPtr child_;
  std::vector<std::string> group_slots_;
  std::vector<AggSpec> aggs_;
  std::vector<std::string> slots_;
  std::vector<size_t> group_idx_;
  std::vector<size_t> agg_idx_;
  std::map<std::vector<int64_t>, std::vector<int64_t>> groups_;
  std::map<std::vector<int64_t>, std::vector<int64_t>>::iterator emit_it_;
  bool emitting_ = false;
  ExecContext* ctx_ = nullptr;
};

/// POP CHECK operator (Markl et al., SIGMOD'04; Figures 1–3 of the paper):
/// a pipeline breaker that materializes its input, compares the actual row
/// count against the optimizer's validity range, and — on violation —
/// parks the materialized rows in the ExecContext re-optimization mailbox
/// and fails Open with FailedPrecondition so the engine can re-plan without
/// losing the work below the checkpoint.
class CheckOp : public Operator {
 public:
  CheckOp(OperatorPtr child, int64_t estimated_rows, int64_t valid_lo,
          int64_t valid_hi);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return child_->output_slots();
  }
  std::string name() const override { return "Check"; }

 private:
  OperatorPtr child_;
  int64_t estimated_rows_, valid_lo_, valid_hi_;
  std::shared_ptr<std::vector<RowBatch>> buffer_;
  size_t next_ = 0;
  ExecContext* ctx_ = nullptr;
};

}  // namespace rqp

#endif  // RQP_EXEC_SORT_AGG_OPS_H_
