#ifndef RQP_EXEC_SORT_AGG_OPS_H_
#define RQP_EXEC_SORT_AGG_OPS_H_

#include <map>
#include <string>
#include <vector>

#include "exec/join_ops.h"
#include "exec/operator.h"

namespace rqp {

/// Blocking sort on one key slot (ascending). External merge sort: input
/// rows accumulate under the MemoryBroker grant; when the grant is
/// exhausted, the buffer is stable-sorted and written out as a run, and the
/// sorted runs are merged in fan-in-limited generations through real
/// SpillManager files. Run formation plus the run-order tie-break in the
/// merge keep the output byte-identical to an in-memory stable sort.
/// Supports the dynamic "grow & shrink" policy: with `dynamic_memory`, the
/// grant is re-negotiated per merge generation, so a mid-query capacity
/// change (the FMT test) changes the fan-in of later generations instead of
/// failing or thrashing; the static policy keeps its initial grant.
class SortOp : public Operator, public MemoryRevocable {
 public:
  struct Options {
    bool dynamic_memory = true;
    int merge_fanin = 8;  ///< max runs merged per external generation
  };

  SortOp(OperatorPtr child, std::string key_slot, Options options);
  SortOp(OperatorPtr child, std::string key_slot)
      : SortOp(std::move(child), std::move(key_slot), Options()) {}
  ~SortOp() override;

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return child_->output_slots();
  }
  std::string name() const override { return "Sort(" + key_ + ")"; }

  /// Merge generations run after run formation (0 = fully in memory).
  int external_passes() const { return external_passes_; }

  /// MemoryRevocable: sheds the in-flight run-formation buffer as a sorted
  /// run, releasing its pages (progress continues on fresh 1-page grants).
  int64_t ShedPages(int64_t deficit) override;
  void OnBrokerDestroyed() override {
    broker_ = nullptr;
    registered_ = false;
  }

 private:
  /// One open run in a k-way merge; holds one page of rows at a time.
  struct MergeCursor {
    SpillFile* file = nullptr;  ///< null once the run is exhausted
    RowBatch batch;
    size_t pos = 0;
  };

  Status ConsumeInput(ExecContext* ctx);
  /// Stable-sorts the buffered rows into order_. The vectorized path first
  /// gathers the key column into one contiguous array so the comparator's
  /// loads are dense instead of striding across full rows; the comparator
  /// semantics (stable, ascending on the same key values) are unchanged, so
  /// the resulting order is identical to the scalar sort.
  void SortBuffer();
  Status FlushRun();
  Status MergeRuns();
  Status MergeGeneration(int64_t fanin);
  Status PollRevocation();
  void ReleaseAllMemory();

  OperatorPtr child_;
  std::string key_;
  Options options_;
  size_t key_idx_ = 0;
  size_t cols_ = 0;
  ExecContext* ctx_ = nullptr;
  MemoryBroker* broker_ = nullptr;
  bool registered_ = false;
  bool vectorized_ = false;  ///< batched key gather before run sorts
  Status shed_error_;

  // In-memory path (doubles as the run-formation buffer).
  RowBuffer rows_;
  std::vector<size_t> order_;
  std::vector<int64_t> key_gather_;  ///< vectorized contiguous sort keys
  size_t next_ = 0;
  int64_t buffer_pages_ = 0;
  int64_t merge_pages_ = 0;
  /// Broker capacity at Open(); the static policy never grows past it, so
  /// memory freed mid-query is captured only by the dynamic policy.
  int64_t open_capacity_ = 0;

  // External path: sorted runs and the final streaming-merge cursors.
  std::vector<std::unique_ptr<SpillFile>> runs_;
  std::vector<MergeCursor> cursors_;
  bool external_ = false;
  int external_passes_ = 0;
};

/// Aggregate functions.
enum class AggFn { kCount, kSum, kMin, kMax };

struct AggSpec {
  AggFn fn = AggFn::kCount;
  std::string slot;  ///< input slot (ignored for COUNT)
  std::string output_name;
};

// Shared accumulator semantics — one definition used by HashAggOp, its
// spilled partial-aggregate merge, and the parallel partial aggregation in
// GatherOp, so every path produces bit-identical results. All four
// functions are decomposable: partials merge commutatively and
// associatively in exact int64 arithmetic, which is what makes
// merge-order-independent parallel aggregation deterministic.

/// Initializes one accumulator vector (COUNT/SUM start at 0, MIN at
/// INT64_MAX, MAX at INT64_MIN).
void InitAggAccumulators(const std::vector<AggSpec>& aggs,
                         std::vector<int64_t>* accs);

/// Folds one *input* row into accumulators. `agg_idx[a]` is the input-slot
/// index of aggregate `a` (unused for COUNT).
void MergeAggInputRow(const std::vector<AggSpec>& aggs,
                      const std::vector<size_t>& agg_idx, const int64_t* row,
                      std::vector<int64_t>* accs);

/// Folds already-aggregated partial state into accumulators (counts add,
/// sums add, min/max fold). `partial` points at the partial's accumulator
/// cells (past any group-key prefix).
void MergeAggPartial(const std::vector<AggSpec>& aggs, const int64_t* partial,
                     std::vector<int64_t>* accs);

/// Flat group table used by the vectorized aggregation kernel: group keys
/// and accumulators live in two flat row-major arrays indexed by a dense
/// group id, with an open-addressing probe table (power-of-two, linear
/// probing) mapping key hashes to ids. Replaces the scalar path's
/// std::map<vector, vector> group state — no per-group heap allocations and
/// no O(log n) vector compares per input row. The probe-table layout never
/// leaks into output: emission and shedding walk SortedIds(), which is
/// exactly the scalar map's lexicographic key order, so the two modes stay
/// byte-identical.
struct FlatGroups {
  static constexpr uint32_t kEmpty = 0xffffffffu;

  size_t key_width = 0;
  size_t acc_width = 0;
  size_t num_groups = 0;
  std::vector<int64_t> keys;      ///< num_groups * key_width, row-major
  std::vector<int64_t> accs;      ///< num_groups * acc_width, row-major
  std::vector<uint32_t> buckets;  ///< open addressing, power-of-two
  uint64_t mask = 0;

  void Reset(size_t kw, size_t aw);
  const int64_t* key(size_t g) const { return keys.data() + g * key_width; }
  int64_t* acc(size_t g) { return accs.data() + g * acc_width; }
  const int64_t* acc(size_t g) const { return accs.data() + g * acc_width; }

  /// Probe-or-insert; returns the group id and sets *inserted. A new
  /// group's accumulator cells are zero — the caller initializes them.
  /// Group ids are stable until Reset() (growth only rehashes buckets).
  uint32_t Upsert(const int64_t* k, bool* inserted);

  /// Group ids sorted lexicographically by key — the scalar std::map's
  /// iteration order.
  std::vector<uint32_t> SortedIds() const;

 private:
  uint64_t Hash(const int64_t* k) const;
  void Grow();
};

/// Hash aggregation on zero or more group-by slots. All four aggregate
/// functions are decomposable, so when the group state outgrows the memory
/// grant the operator sheds it as mergeable partial-aggregate rows,
/// hash-partitioned into SpillManager files; partitions are re-aggregated
/// recursively (with a depth-salted hash) and at `max_recursion` the
/// operator over-commits the broker instead of shedding, guaranteeing
/// completion. Queries that never spill emit groups in key order, exactly
/// like the in-memory implementation.
class HashAggOp : public Operator, public MemoryRevocable {
 public:
  struct Options {
    int fan_out = 8;        ///< shed partitions per recursion level
    int max_recursion = 4;  ///< levels before over-commit completion
  };

  HashAggOp(OperatorPtr child, std::vector<std::string> group_slots,
            std::vector<AggSpec> aggregates, Options options);
  HashAggOp(OperatorPtr child, std::vector<std::string> group_slots,
            std::vector<AggSpec> aggregates)
      : HashAggOp(std::move(child), std::move(group_slots),
                  std::move(aggregates), Options()) {}
  ~HashAggOp() override;

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "HashAgg"; }

  /// MemoryRevocable: sheds the resident group state as partial-aggregate
  /// partitions at the next batch boundary.
  int64_t ShedPages(int64_t deficit) override;
  void OnBrokerDestroyed() override {
    broker_ = nullptr;
    registered_ = false;
  }

 private:
  using GroupMap = std::map<std::vector<int64_t>, std::vector<int64_t>>;

  /// A shed partition awaiting recursive re-aggregation.
  struct PendingPartition {
    std::unique_ptr<SpillFile> file;
    int depth = 0;
  };

  size_t PartitionOf(const std::vector<int64_t>& key) const;
  size_t PartitionOfKey(const int64_t* key, size_t n) const;
  void InitAccumulators(std::vector<int64_t>* accs) const;
  void MergeInputRow(const int64_t* row, std::vector<int64_t>* accs) const;
  void MergePartialRow(const int64_t* partial, std::vector<int64_t>* accs) const;
  /// Resident group count regardless of mode (flat table vs. map).
  size_t GroupCount() const {
    return vectorized_ ? flat_.num_groups : groups_.size();
  }
  /// Initializes / merges one flat accumulator row (same semantics as the
  /// vector-based helpers above, over FlatGroups cells).
  void InitAggCells(int64_t* acc) const;
  void MergeRowIntoCells(int64_t* acc, const int64_t* row, bool partial) const;
  /// Vectorized batch kernel: per-row key assembly + flat-table upsert;
  /// rows landing on existing groups are deferred and accumulated op-major
  /// (one aggregate-function dispatch per column per flush) instead of
  /// per-row. Deferred rows are flushed before every insertion's capacity
  /// check, so a shed triggered mid-batch writes exactly the state the
  /// scalar one-row-at-a-time path would have had at the same point.
  /// `partial` selects MergePartialRow semantics (spilled partial rows:
  /// keys in the leading cells, counts add instead of increment).
  Status AbsorbBatch(const RowBatch& in, bool partial);
  void FlushDeferred(const RowBatch& in, bool partial);
  Status EnsureGroupCapacity();
  Status ShedGroups();
  Status SealShedFiles();
  Status ProcessPending();
  Status PollRevocation();
  void ReleaseAllMemory();

  OperatorPtr child_;
  std::vector<std::string> group_slots_;
  std::vector<AggSpec> aggs_;
  Options options_;
  std::vector<std::string> slots_;
  std::vector<size_t> group_idx_;
  std::vector<size_t> agg_idx_;
  GroupMap groups_;          ///< scalar-mode group state
  GroupMap::iterator emit_it_;
  FlatGroups flat_;          ///< vectorized-mode group state
  std::vector<uint32_t> emit_order_;  ///< vectorized emission (sorted ids)
  size_t emit_pos_ = 0;
  std::vector<int64_t> key_scratch_;
  std::vector<uint32_t> def_rows_, def_grps_;  ///< deferred batch rows
  bool emitting_ = false;
  bool vectorized_ = false;  ///< batched kernel + per-batch hash charging
  ExecContext* ctx_ = nullptr;
  MemoryBroker* broker_ = nullptr;
  bool registered_ = false;
  Status shed_error_;
  int64_t charged_pages_ = 0;
  int depth_ = 0;  ///< recursion depth of the partition being absorbed
  bool shed_this_level_ = false;
  std::vector<std::unique_ptr<SpillFile>> shed_files_;
  std::vector<PendingPartition> pending_;  ///< LIFO: bounds live files
};

/// POP CHECK operator (Markl et al., SIGMOD'04; Figures 1–3 of the paper):
/// a pipeline breaker that materializes its input, compares the actual row
/// count against the optimizer's validity range, and — on violation —
/// parks the materialized rows in the ExecContext re-optimization mailbox
/// and fails Open with FailedPrecondition so the engine can re-plan without
/// losing the work below the checkpoint.
class CheckOp : public Operator {
 public:
  CheckOp(OperatorPtr child, int64_t estimated_rows, int64_t valid_lo,
          int64_t valid_hi);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return child_->output_slots();
  }
  std::string name() const override { return "Check"; }

 private:
  OperatorPtr child_;
  int64_t estimated_rows_, valid_lo_, valid_hi_;
  std::shared_ptr<std::vector<RowBatch>> buffer_;
  size_t next_ = 0;
  ExecContext* ctx_ = nullptr;
};

}  // namespace rqp

#endif  // RQP_EXEC_SORT_AGG_OPS_H_
