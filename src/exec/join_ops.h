#ifndef RQP_EXEC_JOIN_OPS_H_
#define RQP_EXEC_JOIN_OPS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "expr/predicate.h"
#include "storage/spill.h"
#include "storage/table.h"

namespace rqp {

/// Materialized rows with a fixed slot layout — the internal buffer shared
/// by the blocking join implementations.
struct RowBuffer {
  size_t num_cols = 0;
  std::vector<int64_t> data;  // row-major

  size_t num_rows() const { return num_cols == 0 ? 0 : data.size() / num_cols; }
  const int64_t* row(size_t i) const { return data.data() + i * num_cols; }
  void Append(const int64_t* row) {
    data.insert(data.end(), row, row + num_cols);
  }
  int64_t num_pages() const {
    return (static_cast<int64_t>(num_rows()) + kRowsPerPage - 1) /
           kRowsPerPage;
  }
};

/// Drains `child` into `buf`. Sets buf.num_cols from the child's slots.
Status MaterializeChild(Operator* child, ExecContext* ctx, RowBuffer* buf);

/// Deterministic chained hash table over a RowBuffer's key column — flat
/// head/next arrays with power-of-two buckets, replacing the
/// unordered_multimap the joins used to carry per partition.
///
/// Two properties the multimap could not give:
///  - *Defined* match order: chains are built by prepending rows in reverse
///    row order, so forward traversal visits equal keys in build-row order.
///    unordered_multimap's equal_range order among duplicates is
///    implementation-defined; build-row order is what the parallel
///    exchange's probe tables already emit, so serial and DOP > 1 now agree
///    by construction even on duplicate build keys.
///  - Probe cost: a probe is one mix, one head load, and a short chain walk
///    over 8-byte indexes — no node allocations, no pointer-heavy buckets —
///    which is what the fused vectorized whole-batch probe runs over.
///
/// Buckets mix arbitrary keys together, so every chain visit re-checks the
/// row's actual key. Shared by the scalar and vectorized probe paths (byte
/// identity demands one match order, so both modes must use one table).
struct JoinHashTable {
  static constexpr uint32_t kEmpty = 0xffffffffu;
  /// Bucket-count floor for non-empty tables (see Build).
  static constexpr size_t kMinBuckets = 64;

  std::vector<uint32_t> heads;  ///< bucket -> first row index (or kEmpty)
  std::vector<uint32_t> nexts;  ///< row index -> next row in chain
  uint64_t bucket_mask = 0;

  bool empty() const { return nexts.empty(); }
  void clear() {
    heads.clear();
    nexts.clear();
    bucket_mask = 0;
  }

  /// murmur3 fmix64 — deliberately a different finalizer from the
  /// depth-salted splitmix64 that grace partitioning uses, so bucket
  /// placement is independent of partition placement.
  static uint64_t Mix(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }
  size_t BucketOf(int64_t key) const {
    return static_cast<size_t>(Mix(key) & bucket_mask);
  }

  /// (Re)builds the table over all rows of `rows`, keyed on `key_idx`.
  void Build(const RowBuffer& rows, size_t key_idx);

  /// Invokes `fn(row_index)` for every row whose key equals `key`, in
  /// build-row order.
  template <typename Fn>
  void ForEachMatch(const RowBuffer& rows, size_t key_idx, int64_t key,
                    Fn fn) const {
    if (heads.empty()) return;
    for (uint32_t r = heads[BucketOf(key)]; r != kEmpty; r = nexts[r]) {
      if (rows.row(r)[key_idx] == key) fn(static_cast<size_t>(r));
    }
  }
};

/// Hybrid hash join with recursive grace partitioning: builds on the right
/// child, probes with the left. Build rows are hash-partitioned; partitions
/// stay resident under the MemoryBroker grant and overflow partitions spill
/// to real SpillManager files. Spilled (build, probe) partition pairs are
/// processed recursively with a level-dependent hash; at `max_recursion`
/// the operator falls back to chunked hash probing (memory-sized build
/// chunks, one probe-file pass per chunk), which completes at a 1-page
/// grant. The operator honors phase-boundary memory revocation: a capacity
/// shrink makes it shed resident partitions at the next batch boundary.
class HashJoinOp : public Operator, public MemoryRevocable {
 public:
  struct Options {
    int fan_out = 8;        ///< grace partitions per recursion level
    int max_recursion = 4;  ///< levels before the chunked-hash fallback
  };

  HashJoinOp(OperatorPtr probe_child, OperatorPtr build_child,
             std::string probe_key_slot, std::string build_key_slot,
             Options options);
  HashJoinOp(OperatorPtr probe_child, OperatorPtr build_child,
             std::string probe_key_slot, std::string build_key_slot)
      : HashJoinOp(std::move(probe_child), std::move(build_child),
                   std::move(probe_key_slot), std::move(build_key_slot),
                   Options()) {}
  ~HashJoinOp() override;

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  bool supports_columnar() const override { return columnar_; }
  // Build-side columns are flat vectors rewritten every batch, so join
  // output views are NOT stable across calls (sink-only consumption).
  bool stable_columnar_views() const override { return false; }
  Status NextColumnar(ColumnBatch* out) override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "HashJoin"; }

  /// Fraction of the build side that did not fit in memory at the first
  /// partitioning level (diagnostics).
  double spill_fraction() const { return spill_fraction_; }

  /// MemoryRevocable: sheds resident build partitions (largest first) until
  /// `deficit` pages are released or only the 1-page progress minimum
  /// remains. Called only from this operator's own phase-boundary polls.
  int64_t ShedPages(int64_t deficit) override;
  void OnBrokerDestroyed() override {
    broker_ = nullptr;
    registered_ = false;
  }

 private:
  /// One grace partition at the current recursion level.
  struct Partition {
    RowBuffer rows;  ///< resident build rows (empty once spilled)
    JoinHashTable table;
    std::unique_ptr<SpillFile> build_spill;
    std::unique_ptr<SpillFile> probe_spill;
    int64_t charged_pages = 0;  ///< broker pages held for `rows`
    bool spilled = false;
  };

  /// A spilled (build, probe) pair awaiting recursive processing.
  struct PendingTask {
    std::unique_ptr<SpillFile> build, probe;
    int depth = 0;
  };

  enum class Phase { kProbe, kTaskSetup, kChunkLoad, kChunkProbe, kDone };

  size_t PartitionOf(int64_t key) const;
  Status PartitionBuildRow(const int64_t* row);
  Status EnsurePartitionPage(size_t part_idx);
  Status SpillPartition(size_t part_idx);
  Status FinishBuildPhase();
  Status RunBuildFromChild(ExecContext* ctx);
  Status RunBuildFromFile(SpillFile* file);
  Status FetchProbeBatch();
  Status FetchProbeBatchColumnar();
  Status FinishProbePhase();
  Status SetupNextTask();
  Status LoadNextChunk();
  Status PollRevocation();
  void ReleaseAllMemory();

  OperatorPtr probe_child_, build_child_;
  std::string probe_key_, build_key_;
  Options options_;
  /// fan_out - 1 when fan_out is a power of two (mask reduction in
  /// PartitionOf, bit-identical to the modulo), 0 otherwise.
  uint64_t fan_mask_ = 0;
  std::vector<std::string> slots_;
  size_t probe_key_idx_ = 0, build_key_idx_ = 0;
  size_t probe_cols_ = 0, build_cols_ = 0;
  ExecContext* ctx_ = nullptr;
  MemoryBroker* broker_ = nullptr;  ///< kept for destructor-safe cleanup
  bool registered_ = false;

  Phase phase_ = Phase::kDone;
  int depth_ = 0;
  std::vector<Partition> parts_;
  std::vector<PendingTask> tasks_;  ///< LIFO: bounds live spill files
  int64_t base_pages_ = 0;          ///< 1-page progress minimum
  double spill_fraction_ = 0;
  int64_t build_rows_total_ = 0;    ///< depth-0 build rows seen
  int64_t build_rows_spilled_ = 0;  ///< depth-0 build rows spilled
  Status shed_error_;  ///< deferred I/O failure from ShedPages

  // Probe state: match_rows_ index either parts_[match_part_].rows (probe
  // phases) or chunk_ (chunked fallback).
  std::unique_ptr<SpillFile> probe_file_;  ///< recursive probe input
  RowBatch probe_batch_;
  // Vectorized path (ctx->vectorized()): the whole probe batch is processed
  // at fetch time — hash charges flushed in one call, partitions computed
  // in one pass, spilled rows routed to their probe files in row order, and
  // resident rows' matches gathered into fused_pairs_ so emission is a
  // branch-free cursor walk instead of a per-row state machine.
  bool vectorized_ = false;
  std::vector<uint32_t> probe_parts_;
  std::vector<int64_t> probe_keys_;    ///< contiguous key-column gather
  std::vector<uint64_t> probe_mixes_;  ///< SIMD-batched fmix64 of the keys
  std::vector<uint32_t> cand_rows_;    ///< rows with non-empty heads (pass 2)
  std::vector<uint32_t> cand_heads_;   ///< their chain heads (pass 2)
  std::vector<std::pair<uint32_t, uint32_t>> fused_pairs_;  ///< (probe, build)
  size_t fused_next_ = 0;
  // Late-materialized probe (ctx->late_materialize() + a stable columnar
  // probe child): the fused probe gathers ONLY the key column from the
  // child's views; payload columns are carried as absolute row ids and
  // emitted as (base, row-id) references — re-emitted probe columns are
  // never transposed here. Emission switches to owned flat values when the
  // spill-recursion/chunk phases take over (their probe rows come back from
  // disk), demoting any in-flight view batch so output batch boundaries
  // match the row-major path exactly.
  bool columnar_ = false;
  bool probe_via_views_ = false;  ///< current probe batch fetched as views
  ColumnBatch probe_col_;         ///< reused columnar probe input
  ColumnBatch col_scratch_;       ///< bridge scratch for row-major Next
  std::vector<int64_t> row_scratch_;  ///< one gathered row (spill routing)
  std::vector<int64_t*> dst_scratch_;  ///< build-column write cursors (emit)
  size_t probe_row_ = 0;
  size_t match_part_ = 0;
  std::vector<size_t> match_rows_;
  size_t match_next_ = 0;
  bool done_ = false;

  // Chunked-hash fallback state.
  std::unique_ptr<SpillFile> fb_build_;
  RowBuffer chunk_;
  JoinHashTable chunk_table_;
  int64_t chunk_pages_ = 0;
};

/// Sort-merge join over inputs already sorted on their key slots.
/// Materializes both sides (its natural upstream, SortOp, is blocking
/// anyway) and merges with duplicate-group handling.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key_slot,
              std::string right_key_slot);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "MergeJoin"; }

 private:
  OperatorPtr left_child_, right_child_;
  std::string left_key_, right_key_;
  std::vector<std::string> slots_;
  size_t left_key_idx_ = 0, right_key_idx_ = 0;
  RowBuffer left_, right_;
  size_t li_ = 0, ri_ = 0;
  size_t group_l_ = 0, group_r_end_ = 0, group_r_ = 0;
  bool in_group_ = false;
  ExecContext* ctx_ = nullptr;
};

/// Block nested-loops join with an arbitrary (possibly empty = cross) join
/// predicate over the concatenated slots. The robust-last-resort and the
/// deliberate disaster plan in several experiments.
class NestedLoopsJoinOp : public Operator {
 public:
  NestedLoopsJoinOp(OperatorPtr left, OperatorPtr right,
                    PredicatePtr join_predicate);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "NestedLoopsJoin"; }

 private:
  OperatorPtr left_child_, right_child_;
  PredicatePtr predicate_;
  std::optional<CompiledPredicate> compiled_;
  std::vector<std::string> slots_;
  RowBuffer right_;
  ExecContext* ctx_ = nullptr;
  RowBatch left_batch_;
  size_t left_row_ = 0;
  size_t right_row_ = 0;
  bool done_ = false;
};

/// Index nested-loops join: for each outer row, an index descend plus one
/// random page fetch per match on the inner table. Unbeatable for tiny
/// outers, catastrophic for large ones — the plan the Black-Hat
/// underestimate tricks the optimizer into.
class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(OperatorPtr outer, const Table* inner,
                const SortedIndex* inner_index, std::string outer_key_slot);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override {
    return "IndexNLJoin(" + inner_->name() + ")";
  }

 private:
  OperatorPtr outer_child_;
  const Table* inner_;
  const SortedIndex* index_;
  std::string outer_key_;
  size_t outer_key_idx_ = 0;
  std::vector<std::string> slots_;
  ExecContext* ctx_ = nullptr;
  RowBatch outer_batch_;
  size_t outer_row_ = 0;
  std::vector<int64_t> inner_matches_;
  size_t match_next_ = 0;
  bool done_ = false;
};

/// Graefe's generalized join (§5.3 "A generalized join algorithm"): one
/// operator that replaces the mistaken-choice risk among hash, merge, and
/// index nested-loops joins. It materializes both inputs, then picks the
/// cheapest strategy from *actual* input sizes at run time:
///   - merge pass when both inputs arrive sorted on the key,
///   - index probes into a persistent inner index when the outer is tiny,
///   - otherwise an in-memory/hybrid hash join built on the truly smaller
///     input.
class GJoinOp : public Operator {
 public:
  struct Hints {
    bool left_sorted = false;   ///< left input sorted on its key slot
    bool right_sorted = false;  ///< right input sorted on its key slot
    /// Persistent index on the right table's key column (optional).
    const Table* right_table = nullptr;
    const SortedIndex* right_index = nullptr;
  };

  GJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key_slot,
          std::string right_key_slot, Hints hints);
  GJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key_slot,
          std::string right_key_slot)
      : GJoinOp(std::move(left), std::move(right), std::move(left_key_slot),
                std::move(right_key_slot), Hints()) {}

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "GJoin"; }

  /// Strategy chosen at Open (for tests/EXPLAIN): "merge", "index", or
  /// "hash(build=left)" / "hash(build=right)".
  const std::string& chosen_strategy() const { return strategy_; }

 private:
  Status EmitAll();

  OperatorPtr left_child_, right_child_;
  std::string left_key_, right_key_;
  Hints hints_;
  std::vector<std::string> slots_;
  size_t left_key_idx_ = 0, right_key_idx_ = 0;
  RowBuffer left_, right_;
  std::string strategy_;
  ExecContext* ctx_ = nullptr;
  // Results are produced eagerly into a spool replayed by Next().
  std::vector<RowBatch> spool_;
  size_t spool_next_ = 0;
};

}  // namespace rqp

#endif  // RQP_EXEC_JOIN_OPS_H_
