#ifndef RQP_EXEC_JOIN_OPS_H_
#define RQP_EXEC_JOIN_OPS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "expr/predicate.h"
#include "storage/table.h"

namespace rqp {

/// Materialized rows with a fixed slot layout — the internal buffer shared
/// by the blocking join implementations.
struct RowBuffer {
  size_t num_cols = 0;
  std::vector<int64_t> data;  // row-major

  size_t num_rows() const { return num_cols == 0 ? 0 : data.size() / num_cols; }
  const int64_t* row(size_t i) const { return data.data() + i * num_cols; }
  void Append(const int64_t* row) {
    data.insert(data.end(), row, row + num_cols);
  }
  int64_t num_pages() const {
    return (static_cast<int64_t>(num_rows()) + kRowsPerPage - 1) /
           kRowsPerPage;
  }
};

/// Drains `child` into `buf`. Sets buf.num_cols from the child's slots.
Status MaterializeChild(Operator* child, ExecContext* ctx, RowBuffer* buf);

/// Hybrid hash join: builds on the right child, probes with the left.
/// When the memory grant is smaller than the build side, the overflow
/// fraction of both inputs is charged as spill I/O (grace partitioning) —
/// the knob behind the memory-adaptation experiments.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr probe_child, OperatorPtr build_child,
             std::string probe_key_slot, std::string build_key_slot);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "HashJoin"; }

  /// Fraction of the build side that did not fit in memory (diagnostics).
  double spill_fraction() const { return spill_fraction_; }

 private:
  OperatorPtr probe_child_, build_child_;
  std::string probe_key_, build_key_;
  std::vector<std::string> slots_;
  size_t probe_key_idx_ = 0, build_key_idx_ = 0;
  RowBuffer build_;
  std::unordered_multimap<int64_t, size_t> table_;
  ExecContext* ctx_ = nullptr;
  int64_t granted_pages_ = 0;
  double spill_fraction_ = 0;
  double pending_spill_pages_ = 0;
  // probe state
  RowBatch probe_batch_;
  size_t probe_row_ = 0;
  std::vector<size_t> match_rows_;
  size_t match_next_ = 0;
  bool done_ = false;
};

/// Sort-merge join over inputs already sorted on their key slots.
/// Materializes both sides (its natural upstream, SortOp, is blocking
/// anyway) and merges with duplicate-group handling.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key_slot,
              std::string right_key_slot);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "MergeJoin"; }

 private:
  OperatorPtr left_child_, right_child_;
  std::string left_key_, right_key_;
  std::vector<std::string> slots_;
  size_t left_key_idx_ = 0, right_key_idx_ = 0;
  RowBuffer left_, right_;
  size_t li_ = 0, ri_ = 0;
  size_t group_l_ = 0, group_r_end_ = 0, group_r_ = 0;
  bool in_group_ = false;
  ExecContext* ctx_ = nullptr;
};

/// Block nested-loops join with an arbitrary (possibly empty = cross) join
/// predicate over the concatenated slots. The robust-last-resort and the
/// deliberate disaster plan in several experiments.
class NestedLoopsJoinOp : public Operator {
 public:
  NestedLoopsJoinOp(OperatorPtr left, OperatorPtr right,
                    PredicatePtr join_predicate);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "NestedLoopsJoin"; }

 private:
  OperatorPtr left_child_, right_child_;
  PredicatePtr predicate_;
  std::optional<CompiledPredicate> compiled_;
  std::vector<std::string> slots_;
  RowBuffer right_;
  ExecContext* ctx_ = nullptr;
  RowBatch left_batch_;
  size_t left_row_ = 0;
  size_t right_row_ = 0;
  bool done_ = false;
};

/// Index nested-loops join: for each outer row, an index descend plus one
/// random page fetch per match on the inner table. Unbeatable for tiny
/// outers, catastrophic for large ones — the plan the Black-Hat
/// underestimate tricks the optimizer into.
class IndexNLJoinOp : public Operator {
 public:
  IndexNLJoinOp(OperatorPtr outer, const Table* inner,
                const SortedIndex* inner_index, std::string outer_key_slot);

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override {
    return "IndexNLJoin(" + inner_->name() + ")";
  }

 private:
  OperatorPtr outer_child_;
  const Table* inner_;
  const SortedIndex* index_;
  std::string outer_key_;
  size_t outer_key_idx_ = 0;
  std::vector<std::string> slots_;
  ExecContext* ctx_ = nullptr;
  RowBatch outer_batch_;
  size_t outer_row_ = 0;
  std::vector<int64_t> inner_matches_;
  size_t match_next_ = 0;
  bool done_ = false;
};

/// Graefe's generalized join (§5.3 "A generalized join algorithm"): one
/// operator that replaces the mistaken-choice risk among hash, merge, and
/// index nested-loops joins. It materializes both inputs, then picks the
/// cheapest strategy from *actual* input sizes at run time:
///   - merge pass when both inputs arrive sorted on the key,
///   - index probes into a persistent inner index when the outer is tiny,
///   - otherwise an in-memory/hybrid hash join built on the truly smaller
///     input.
class GJoinOp : public Operator {
 public:
  struct Hints {
    bool left_sorted = false;   ///< left input sorted on its key slot
    bool right_sorted = false;  ///< right input sorted on its key slot
    /// Persistent index on the right table's key column (optional).
    const Table* right_table = nullptr;
    const SortedIndex* right_index = nullptr;
  };

  GJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key_slot,
          std::string right_key_slot, Hints hints);
  GJoinOp(OperatorPtr left, OperatorPtr right, std::string left_key_slot,
          std::string right_key_slot)
      : GJoinOp(std::move(left), std::move(right), std::move(left_key_slot),
                std::move(right_key_slot), Hints()) {}

  Status Open(ExecContext* ctx) override;
  Status Next(RowBatch* out) override;
  void Close() override;
  const std::vector<std::string>& output_slots() const override {
    return slots_;
  }
  std::string name() const override { return "GJoin"; }

  /// Strategy chosen at Open (for tests/EXPLAIN): "merge", "index", or
  /// "hash(build=left)" / "hash(build=right)".
  const std::string& chosen_strategy() const { return strategy_; }

 private:
  Status EmitAll();

  OperatorPtr left_child_, right_child_;
  std::string left_key_, right_key_;
  Hints hints_;
  std::vector<std::string> slots_;
  size_t left_key_idx_ = 0, right_key_idx_ = 0;
  RowBuffer left_, right_;
  std::string strategy_;
  ExecContext* ctx_ = nullptr;
  // Results are produced eagerly into a spool replayed by Next().
  std::vector<RowBatch> spool_;
  size_t spool_next_ = 0;
};

}  // namespace rqp

#endif  // RQP_EXEC_JOIN_OPS_H_
