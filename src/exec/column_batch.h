#ifndef RQP_EXEC_COLUMN_BATCH_H_
#define RQP_EXEC_COLUMN_BATCH_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/batch.h"

namespace rqp {

class ExecContext;

/// Late-materialized columnar batch: the unit of data flow on the hot
/// pipeline edges (scan→filter→map→join-probe→sink) when the
/// late-materialization gate is on. Each column is either a zero-copy *view*
/// (a base pointer into full `Table::column()` storage, addressed by
/// absolute row id) or an owned *flat* vector (addressed by logical
/// position). Row addressing is batch-level: with a selection vector,
/// logical position i maps to absolute row id sel()[i]; without one the
/// batch is a dense range starting at phys_begin(). Flat columns ignore the
/// mapping — they are written in logical order by whoever derived them
/// (map expressions, join build-side gathers).
///
/// View bases for scan/filter output point into immutable table storage, so
/// they stay valid — and identical — across successive producer calls
/// (`stable_views()`); that is what lets a consumer hold view references
/// from several producer batches at once (the join probe packing output
/// across fetches). Producers whose views alias reused scratch memory must
/// leave stable_views false, and consumers requiring cross-batch stability
/// must check it at Open.
///
/// Row-major RowBatch remains the interface everywhere else (blocking and
/// spilling operators, the result surface); MaterializeInto is the single
/// conversion point and counts every converted row in the
/// `rows_materialized` diagnostic.
class ColumnBatch {
 public:
  struct Column {
    const int64_t* base = nullptr;  ///< view base, absolute row-id indexed
    std::vector<int64_t> flat;      ///< owned values, logical-position indexed
    bool is_view = false;
  };

  /// Reconfigures for `num_cols` columns with no rows, no selection, and all
  /// columns flat-empty. Keeps per-column capacity, like RowBatch::Reset.
  void Reset(size_t num_cols) {
    if (cols_.size() != num_cols) cols_.resize(num_cols);
    for (auto& c : cols_) {
      c.base = nullptr;
      c.is_view = false;
      c.flat.clear();
    }
    n_ = 0;
    has_sel_ = false;
    sel_.clear();
    phys_begin_ = 0;
    stable_views_ = false;
  }

  size_t num_cols() const { return cols_.size(); }
  size_t num_rows() const { return n_; }
  bool empty() const { return n_ == 0; }
  bool full() const { return n_ >= kBatchRows; }
  void set_num_rows(size_t n) { n_ = n; }

  Column& col(size_t c) { return cols_[c]; }
  const Column& col(size_t c) const { return cols_[c]; }
  void SetView(size_t c, const int64_t* base) {
    cols_[c].base = base;
    cols_[c].is_view = true;
  }
  bool all_views() const {
    for (const auto& c : cols_) {
      if (!c.is_view) return false;
    }
    return !cols_.empty();
  }

  bool stable_views() const { return stable_views_; }
  void set_stable_views(bool v) { stable_views_ = v; }

  /// Dense addressing: logical position i is absolute row phys_begin + i.
  void SetDense(int64_t phys_begin, size_t n) {
    has_sel_ = false;
    sel_.clear();
    phys_begin_ = phys_begin;
    n_ = n;
  }
  /// Switches to selection addressing. Callers append absolute row ids to
  /// mutable_sel() and keep num_rows in sync (set_num_rows / AppendSelRow).
  void UseSelection() {
    has_sel_ = true;
    phys_begin_ = 0;
  }
  bool has_selection() const { return has_sel_; }
  int64_t phys_begin() const { return phys_begin_; }
  const std::vector<uint32_t>& sel() const { return sel_; }
  std::vector<uint32_t>& mutable_sel() { return sel_; }
  void AppendSelRow(uint32_t row_id) {
    assert(has_sel_);
    sel_.push_back(row_id);
    ++n_;
  }

  /// Absolute row id of logical position i (view-column addressing).
  int64_t RowId(size_t i) const {
    return has_sel_ ? static_cast<int64_t>(sel_[i]) : phys_begin_ + i;
  }
  int64_t Value(size_t c, size_t i) const {
    const Column& col = cols_[c];
    return col.is_view ? col.base[RowId(i)] : col.flat[i];
  }
  /// Start of the contiguous value run for a dense view column — the
  /// stride-free pointer the VM kernels run over. Valid only when
  /// !has_selection() and the column is a view.
  const int64_t* DensePtr(size_t c) const {
    assert(!has_sel_ && cols_[c].is_view);
    return cols_[c].base + phys_begin_;
  }

  /// Copies logical row i into `dst` (one cell per column) — the on-demand
  /// row gather for spill routing and exchange staging.
  void GatherRow(size_t i, int64_t* dst) const {
    for (size_t c = 0; c < cols_.size(); ++c) dst[c] = Value(c, i);
  }

  /// Appends every logical row to `out` in row-major order — the single
  /// columnar→row conversion point. Counts the rows in the
  /// rows_materialized diagnostic when `ctx` is non-null (zero cost-clock
  /// charge: the legacy path transposed these rows without charging either).
  void MaterializeInto(RowBatch* out, ExecContext* ctx) const;

  /// Rewrites every view column as a flat column holding its current values
  /// and drops the selection mapping, so subsequent rows can be appended
  /// flat. Used by producers whose emission switches from view references to
  /// owned values mid-batch (the join probe crossing into its spill phases)
  /// — the legacy row path packs output across that transition, so the
  /// columnar path must too.
  void DemoteViewsToFlat() {
    for (auto& c : cols_) {
      if (!c.is_view) continue;
      std::vector<int64_t> values(n_);
      for (size_t i = 0; i < n_; ++i) {
        values[i] = c.base[RowId(i)];
      }
      c.flat = std::move(values);
      c.is_view = false;
      c.base = nullptr;
    }
    has_sel_ = false;
    sel_.clear();
    phys_begin_ = 0;
    stable_views_ = false;
  }

 private:
  std::vector<Column> cols_;
  size_t n_ = 0;
  bool has_sel_ = false;
  std::vector<uint32_t> sel_;  ///< absolute row ids, one per logical row
  int64_t phys_begin_ = 0;     ///< dense-range start when no selection
  bool stable_views_ = false;
};

}  // namespace rqp

#endif  // RQP_EXEC_COLUMN_BATCH_H_
