#include "cache/result_cache.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <utility>

namespace rqp {

namespace {

/// FNV-1a 64-bit, folded over one int64 at a time.
uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFFu;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Strips the `table.` qualifier from a spec slot; false when the slot is
/// not a column of `table`.
bool UnqualifySlot(const std::string& slot, const std::string& table,
                   std::string* column) {
  const std::string prefix = table + ".";
  if (slot.rfind(prefix, 0) != 0) return false;
  *column = slot.substr(prefix.size());
  return true;
}

}  // namespace

ResultCache::~ResultCache() { Clear(); }

uint64_t ResultCache::Checksum(const std::vector<RowBatch>& batches) {
  uint64_t h = 1469598103934665603ULL;
  for (const RowBatch& b : batches) {
    h = FnvMix(h, b.num_cols());
    h = FnvMix(h, b.num_rows());
    for (int64_t cell : b.data()) h = FnvMix(h, static_cast<uint64_t>(cell));
  }
  return h;
}

ResultCache::Snapshot ResultCache::TakeSnapshot(const QuerySpec& spec,
                                                const Catalog& catalog) {
  std::set<std::string> names;
  for (const auto& t : spec.tables) names.insert(t.table);
  Snapshot snap;
  snap.reserve(names.size());
  for (const std::string& name : names) {
    auto table_or = catalog.GetTable(name);
    if (!table_or.ok()) continue;  // the query itself will fail
    const Table* t = table_or.value();
    snap.push_back(TableEpoch{name, t->append_epoch(), t->reload_epoch(),
                              t->num_rows()});
  }
  return snap;
}

ResultCache::MaintenanceInfo ResultCache::AnalyzeMaintenance(
    const QuerySpec& spec, const Catalog& catalog,
    const std::vector<RowBatch>& batches) {
  MaintenanceInfo info;
  // Patchable shape: one base table, no joins, and an aggregation node
  // (group-by and/or aggregates). Aggregation is what makes the delta fold
  // order-insensitive — HashAgg emits groups in key order regardless of
  // input order, so patched output can match a recompute byte-for-byte.
  // Non-aggregate results are order-sensitive (an index scan emits key
  // order, not append order) and are invalidated instead.
  if (spec.tables.size() != 1 || !spec.joins.empty()) return info;
  if (spec.aggregates.empty() && spec.group_by.empty()) return info;
  // Derived columns run through the expression VM above the scan; folding a
  // delta here would skip their evaluation (and any runtime error a
  // recompute would raise), so such results are invalidated, not patched.
  if (!spec.derived.empty()) return info;
  auto table_or = catalog.GetTable(spec.tables[0].table);
  if (!table_or.ok()) return info;
  const Table* t = table_or.value();

  std::vector<size_t> group_cols;
  for (const auto& slot : spec.group_by) {
    std::string column;
    if (!UnqualifySlot(slot, t->name(), &column)) return info;
    auto idx = t->ColumnIndex(column);
    if (!idx.ok()) return info;
    group_cols.push_back(idx.value());
  }
  std::vector<size_t> agg_cols;
  for (const auto& a : spec.aggregates) {
    if (a.fn == AggFn::kCount) {
      agg_cols.push_back(0);  // COUNT reads no input cell
      continue;
    }
    std::string column;
    if (!UnqualifySlot(a.slot, t->name(), &column)) return info;
    auto idx = t->ColumnIndex(column);
    if (!idx.ok()) return info;
    agg_cols.push_back(idx.value());
  }

  // The cached layout must be [group keys..., accumulators...] with group
  // keys in strictly ascending key order — the in-memory HashAgg emit
  // order. A result that spilled may have been emitted in partition order;
  // verifying sortedness here (instead of trusting the operator) keeps the
  // patched re-emit byte-identical to a recompute.
  const size_t cols = group_cols.size() + spec.aggregates.size();
  int64_t total_rows = 0;
  const int64_t* prev = nullptr;
  for (const RowBatch& b : batches) {
    if (b.num_cols() != cols) return info;
    for (size_t r = 0; r < b.num_rows(); ++r) {
      const int64_t* row = b.row(r);
      if (prev != nullptr && !group_cols.empty() &&
          !std::lexicographical_compare(prev, prev + group_cols.size(), row,
                                        row + group_cols.size())) {
        return info;
      }
      prev = row;
      ++total_rows;
    }
  }
  // A scalar aggregate is exactly one row (even over empty input).
  if (group_cols.empty() && total_rows != 1) return info;

  info.maintainable = true;
  info.table = t->name();
  info.predicate = spec.tables[0].predicate;
  if (info.predicate != nullptr && HasParams(info.predicate)) {
    info.predicate = BindParams(info.predicate, spec.params);
  }
  info.group_cols = std::move(group_cols);
  info.aggs = spec.aggregates;
  info.agg_cols = std::move(agg_cols);
  return info;
}

void ResultCache::AttachBroker(MemoryBroker* broker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registered_ && broker_ != nullptr) broker_->Unregister(this);
  registered_ = false;
  charged_pages_ = 0;
  // Entries cached under a previous broker are exempt from the new one:
  // their grants died with the old broker, so releasing them against the
  // new broker would corrupt its accounting.
  ForEachEntryClearCharged();
  broker_ = broker;
}

void ResultCache::ForEachEntryClearCharged() {
  std::vector<std::string> keys;
  entries_.ForEach([&keys](const std::string& k, const Entry&) {
    keys.push_back(k);
  });
  for (const auto& k : keys) {
    Entry* e = entries_.Get(k);
    if (e != nullptr) e->charged = false;
  }
}

void ResultCache::OnBrokerDestroyed() {
  std::lock_guard<std::mutex> lock(mu_);
  broker_ = nullptr;
  registered_ = false;
  charged_pages_ = 0;
  ForEachEntryClearCharged();
}

void ResultCache::ReleaseToBroker(int64_t pages) {
  if (broker_ != nullptr && pages > 0) {
    broker_->Release(pages);
    charged_pages_ -= std::min(charged_pages_, pages);
  }
}

void ResultCache::UpdateRegistrationLocked() {
  if (broker_ == nullptr) return;
  if (!registered_ && charged_pages_ > 0) {
    broker_->Register(this);
    registered_ = true;
  } else if (registered_ && charged_pages_ == 0) {
    broker_->Unregister(this);
    registered_ = false;
  }
}

void ResultCache::EraseLocked(const std::string& key) {
  Entry* e = entries_.Get(key);
  if (e == nullptr) return;
  total_pages_ -= e->pages;
  if (e->charged) ReleaseToBroker(e->pages);
  entries_.Erase(key);
  UpdateRegistrationLocked();
}

bool ResultCache::EvictOldestLocked() {
  std::string key;
  Entry victim;
  if (!entries_.EvictOldest(&key, &victim)) return false;
  total_pages_ -= victim.pages;
  if (victim.charged) ReleaseToBroker(victim.pages);
  ++stats_.evictions;
  UpdateRegistrationLocked();
  return true;
}

bool ResultCache::ReserveLocked(int64_t pages, size_t min_keep) {
  if (broker_ == nullptr) return true;
  while (!broker_->TryGrant(pages)) {
    if (entries_.size() <= min_keep) return false;
    EvictOldestLocked();
  }
  charged_pages_ += pages;
  return true;
}

bool ResultCache::Lookup(const std::string& key, const Catalog& catalog,
                         FaultInjector* faults, Hit* hit) {
  *hit = Hit{};
  std::lock_guard<std::mutex> lock(mu_);
  Entry* entry = entries_.Get(key);
  if (entry == nullptr) {
    ++stats_.misses;
    return false;
  }

  // Fault injection: a scheduled corruption damages the entry *before* the
  // checksum runs, exercising the real detection path. Copy-on-corrupt —
  // a Hit handed out earlier shares the old batch vector and must keep
  // seeing intact data.
  if (faults != nullptr && faults->DrawCacheCorruption()) {
    auto damaged = std::make_shared<std::vector<RowBatch>>(*entry->batches);
    bool flipped = false;
    for (RowBatch& b : *damaged) {
      if (!b.mutable_data().empty()) {
        b.mutable_data()[0] ^= int64_t{1} << 17;
        flipped = true;
        break;
      }
    }
    entry->batches = std::move(damaged);
    // An empty result has no cell to flip; damage the stored checksum
    // instead (torn metadata) so detection still fires.
    if (!flipped) entry->checksum ^= 0x9E3779B97F4A7C15ULL;
  }

  if (Checksum(*entry->batches) != entry->checksum) {
    ++stats_.corruptions_detected;
    ++stats_.misses;
    EraseLocked(key);
    return false;
  }

  // Freshness: any reload-epoch change (or row growth unexplained by
  // appends) invalidates; pure appends are measured as the delta.
  int64_t append_delta = 0;
  bool invalid = false;
  for (const TableEpoch& te : entry->snapshot) {
    auto table_or = catalog.GetTable(te.table);
    if (!table_or.ok()) {
      invalid = true;
      break;
    }
    const Table* t = table_or.value();
    const int64_t ad = t->append_epoch() - te.append_epoch;
    if (t->reload_epoch() != te.reload_epoch || ad < 0 ||
        t->num_rows() - te.rows != ad) {
      invalid = true;
      break;
    }
    append_delta += ad;
  }
  if (invalid) {
    ++stats_.invalidations;
    ++stats_.misses;
    EraseLocked(key);
    return false;
  }

  if (append_delta > options_.max_staleness) {
    if (!entry->maint.maintainable) {
      ++stats_.invalidations;
      ++stats_.misses;
      EraseLocked(key);
      return false;
    }
    if (!PatchLocked(key, entry, catalog, hit)) {
      ++stats_.misses;
      return false;
    }
    ++stats_.patched_hits;
  } else if (append_delta > 0) {
    hit->stale = true;
    ++stats_.stale_hits;
  }

  hit->batches = entry->batches;
  hit->rows = entry->rows;
  // A hit costs only the re-emit work: one row_cpu per served row (the
  // patch charges, if any, were added by PatchLocked).
  hit->rows_processed += entry->rows;
  hit->cost_units += options_.cost_model.row_cpu * entry->rows;
  ++stats_.hits;
  return true;
}

bool ResultCache::PatchLocked(const std::string& key, Entry* entry,
                              const Catalog& catalog, Hit* hit) {
  const MaintenanceInfo& m = entry->maint;
  auto table_or = catalog.GetTable(m.table);
  if (!table_or.ok()) {
    ++stats_.invalidations;
    EraseLocked(key);
    return false;
  }
  const Table* t = table_or.value();
  const TableEpoch* snap = nullptr;
  for (const TableEpoch& te : entry->snapshot) {
    if (te.table == m.table) snap = &te;
  }
  if (snap == nullptr || t->num_rows() < snap->rows) {
    ++stats_.invalidations;
    EraseLocked(key);
    return false;
  }

  const size_t groups = m.group_cols.size();
  const size_t naggs = m.aggs.size();

  // Decode the cached result into the canonical group map...
  std::map<std::vector<int64_t>, std::vector<int64_t>> state;
  for (const RowBatch& b : *entry->batches) {
    for (size_t r = 0; r < b.num_rows(); ++r) {
      const int64_t* row = b.row(r);
      std::vector<int64_t> gkey(row, row + groups);
      state.emplace(std::move(gkey),
                    std::vector<int64_t>(row + groups, row + groups + naggs));
    }
  }

  // ...fold the delta rows in (identical accumulator semantics to
  // HashAggOp, so the patched cells match a recompute exactly)...
  std::vector<size_t> identity_idx(naggs);
  std::iota(identity_idx.begin(), identity_idx.end(), 0);
  std::vector<int64_t> input(naggs, 0);
  const int64_t delta_rows = t->num_rows() - snap->rows;
  for (int64_t r = snap->rows; r < t->num_rows(); ++r) {
    if (m.predicate != nullptr) {
      ++hit->predicate_evals;
      if (!EvalOnTable(m.predicate, *t, r)) continue;
    }
    std::vector<int64_t> gkey(groups);
    for (size_t g = 0; g < groups; ++g) {
      gkey[g] = t->Value(m.group_cols[g], r);
    }
    auto [it, inserted] = state.try_emplace(std::move(gkey));
    if (inserted) InitAggAccumulators(m.aggs, &it->second);
    for (size_t a = 0; a < naggs; ++a) {
      if (m.aggs[a].fn != AggFn::kCount) {
        input[a] = t->Value(m.agg_cols[a], r);
      }
    }
    MergeAggInputRow(m.aggs, identity_idx, input.data(), &it->second);
  }

  // ...and re-emit in key order (new groups may have appeared anywhere in
  // the order). Copy-on-patch: outstanding Hits keep the old vector.
  auto patched = std::make_shared<std::vector<RowBatch>>();
  RowBatch batch(groups + naggs);
  std::vector<int64_t> row(groups + naggs);
  for (const auto& [gkey, accs] : state) {
    std::copy(gkey.begin(), gkey.end(), row.begin());
    std::copy(accs.begin(), accs.end(), row.begin() + groups);
    batch.AppendRow(row);
    if (batch.full()) {
      patched->push_back(std::move(batch));
      batch.Reset(groups + naggs);
    }
  }
  if (!batch.empty()) patched->push_back(std::move(batch));

  const int64_t new_rows = static_cast<int64_t>(state.size());
  const int64_t new_pages = PagesFor(new_rows);
  if (new_pages > entry->pages) {
    const int64_t extra = new_pages - entry->pages;
    // The entry under patch is MRU (Lookup just touched it), so evicting
    // from the LRU end with min_keep=1 can never evict it.
    if (entry->charged && !ReserveLocked(extra, 1)) {
      ++stats_.invalidations;
      EraseLocked(key);
      return false;
    }
    total_pages_ += extra;
    entry->pages = new_pages;
  } else if (new_pages < entry->pages) {
    const int64_t freed = entry->pages - new_pages;
    total_pages_ -= freed;
    if (entry->charged) ReleaseToBroker(freed);
    entry->pages = new_pages;
  }

  entry->batches = std::move(patched);
  entry->rows = new_rows;
  entry->checksum = Checksum(*entry->batches);
  for (TableEpoch& te : entry->snapshot) {
    if (te.table != m.table) continue;
    te.append_epoch = t->append_epoch();
    te.reload_epoch = t->reload_epoch();
    te.rows = t->num_rows();
  }

  // Deterministic patch charges: the delta is a sequential scan (its pages
  // at seq_page_read) plus one row_cpu per delta row folded.
  const int64_t delta_pages = (delta_rows + kRowsPerPage - 1) / kRowsPerPage;
  hit->patched = true;
  hit->pages_read += delta_pages;
  hit->rows_processed += delta_rows;
  hit->cost_units += options_.cost_model.seq_page_read * delta_pages +
                     options_.cost_model.row_cpu * delta_rows;
  return true;
}

void ResultCache::Insert(const std::string& key, const QuerySpec& spec,
                         const Catalog& catalog, Snapshot snapshot,
                         std::vector<RowBatch> batches, int64_t rows) {
  const int64_t pages = PagesFor(rows);
  if (options_.max_entry_pages > 0 && pages > options_.max_entry_pages) {
    return;  // oversized result; caching it would thrash the LRU
  }
  Entry entry;
  entry.rows = rows;
  entry.pages = pages;
  entry.checksum = Checksum(batches);
  entry.snapshot = std::move(snapshot);
  entry.maint = AnalyzeMaintenance(spec, catalog, batches);
  entry.batches =
      std::make_shared<const std::vector<RowBatch>>(std::move(batches));

  std::lock_guard<std::mutex> lock(mu_);
  EraseLocked(key);  // replace-by-key: drop the old entry's pages first
  while (entries_.size() >= options_.max_entries) {
    if (!EvictOldestLocked()) break;
  }
  while (options_.max_pages > 0 && total_pages_ + pages > options_.max_pages) {
    if (!EvictOldestLocked()) break;
  }
  if (options_.max_pages > 0 && total_pages_ + pages > options_.max_pages) {
    return;  // page budget refuses even an empty cache
  }
  if (!ReserveLocked(pages, 0)) {
    return;  // broker refuses even after shedding everything else
  }
  entry.charged = broker_ != nullptr;
  total_pages_ += pages;
  entries_.Put(key, std::move(entry));
  ++stats_.inserts;
  UpdateRegistrationLocked();
}

int64_t ResultCache::ShedPages(int64_t deficit) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t shed = 0;
  while (shed < deficit && !entries_.empty()) {
    const int64_t before = total_pages_;
    if (!EvictOldestLocked()) break;
    shed += before - total_pages_;
  }
  return shed;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t before = stats_.evictions;
  while (EvictOldestLocked()) {
  }
  // Clear is administrative, not capacity pressure; don't let it skew the
  // eviction stat.
  stats_.evictions = before;
  if (registered_ && broker_ != nullptr) {
    broker_->Unregister(this);
    registered_ = false;
  }
}

}  // namespace rqp
