#ifndef RQP_CACHE_RESULT_CACHE_H_
#define RQP_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/context.h"
#include "exec/sort_agg_ops.h"
#include "expr/predicate.h"
#include "fault/fault.h"
#include "optimizer/optimizer.h"
#include "storage/table.h"
#include "util/cache_util.h"

namespace rqp {

/// Semantic result cache: the result-reuse tier above the plan cache.
/// Entries are keyed by the normalized QuerySpec fingerprint
/// (PlanCache::Key), store the query's full result RowBatches, and are kept
/// *correct under data change* by the per-table epoch counters:
///
///  - Any reload-epoch change (SetColumnData / mutable_column — in-place
///    mutation that can rewrite history) invalidates the entry.
///  - Append-only change (AppendRow) is measured precisely: the rows in
///    [snapshot.rows, table.num_rows) are the delta. Within the bounded
///    staleness budget the entry is served as-is (a *stale hit*); beyond
///    it, single-table aggregate results are *patched* pequod-style by
///    folding the delta rows into the cached accumulators (all four
///    aggregate functions are decomposable), and everything else is
///    invalidated.
///
/// Robustness integration:
///  - Memory is charged through the engine's MemoryBroker via TryGrant
///    (all-or-nothing, no overcommit): cached results compete with query
///    working memory, and revocation polls shed LRU entries instead of
///    OOMing (the cache is a MemoryRevocable like any spilling operator).
///  - Single-flight stampede suppression (shared KeyedFlight utility):
///    concurrent identical queries wait on the in-flight computation.
///  - Fault-injector integration: kCacheCorruption events damage an entry
///    at lookup; the FNV-1a checksum detects it, the entry is dropped, and
///    the query recomputes — corrupted rows are never served.
///  - Deterministic cost accounting: a hit charges only re-emit work
///    (rows x row_cpu); a patched hit additionally charges the delta scan.
///
/// Thread-safe; lock order is cache mutex -> broker mutex (the broker
/// never calls back into the cache while holding its own lock).
class ResultCache : public MemoryRevocable {
 public:
  struct Options {
    size_t max_entries = 64;
    /// Total page budget across entries (<= 0: unlimited beyond the
    /// broker's say-so). The broker remains the binding constraint.
    int64_t max_pages = 4096;
    /// Largest single result admitted (<= 0: unlimited).
    int64_t max_entry_pages = 1024;
    /// Bounded staleness: a cached entry whose referenced tables have
    /// received at most this many appended rows in total since the
    /// snapshot may be served unpatched. 0 = always fresh.
    int64_t max_staleness = 0;
    /// Constants for the deterministic hit/patch charges.
    CostModel cost_model;
  };

  struct Stats {
    int64_t hits = 0;          ///< total served (fresh + stale + patched)
    int64_t patched_hits = 0;  ///< served after incremental maintenance
    int64_t stale_hits = 0;    ///< served within the staleness budget
    int64_t misses = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;      ///< LRU / capacity / revocation drops
    int64_t invalidations = 0;  ///< epoch-based correctness drops
    int64_t corruptions_detected = 0;
  };

  /// A served result plus its deterministic charges. `batches` is a shared
  /// snapshot: later patches/evictions swap the entry's pointer rather
  /// than mutating the vector, so a Hit stays valid after release.
  struct Hit {
    std::shared_ptr<const std::vector<RowBatch>> batches;
    int64_t rows = 0;
    bool patched = false;
    bool stale = false;
    double cost_units = 0;
    int64_t pages_read = 0;       ///< delta pages scanned by a patch
    int64_t rows_processed = 0;
    int64_t predicate_evals = 0;  ///< delta rows filtered by a patch
  };

  /// Epoch snapshot of one referenced table at result-computation time.
  struct TableEpoch {
    std::string table;
    int64_t append_epoch = 0;
    int64_t reload_epoch = 0;
    int64_t rows = 0;
  };
  using Snapshot = std::vector<TableEpoch>;

  using Flight = KeyedFlight<std::string>::Guard;

  ResultCache() : ResultCache(Options()) {}
  explicit ResultCache(Options options) : options_(options) {}
  ~ResultCache() override;

  /// Epochs of every table `spec` references, as of now. The engine takes
  /// the snapshot *before* execution so rows appended mid-computation are
  /// conservatively treated as post-snapshot delta.
  static Snapshot TakeSnapshot(const QuerySpec& spec, const Catalog& catalog);

  /// Looks up `key`, enforcing freshness against the current catalog
  /// epochs (invalidating, stale-serving, or patching as appropriate) and
  /// drawing scheduled corruption faults from `faults` (may be null).
  /// Returns true and fills `hit` only when a correct result is served.
  bool Lookup(const std::string& key, const Catalog& catalog,
              FaultInjector* faults, Hit* hit);

  /// Single-flight token for the miss path; a guard that `waited()` should
  /// re-run Lookup before computing.
  Flight AcquireFlight(const std::string& key) { return flight_.Acquire(key); }

  /// Publishes a completed result. Must only be called after the query
  /// finished successfully — aborted attempts (guardrail trips, faults,
  /// retries) must never reach here, which is what keeps partially-filled
  /// entries unobservable. Oversized results are skipped; otherwise LRU
  /// entries are evicted until entry-count, page-budget, and broker
  /// constraints all admit the new entry (skipped if the cache is empty
  /// and the broker still refuses).
  void Insert(const std::string& key, const QuerySpec& spec,
              const Catalog& catalog, Snapshot snapshot,
              std::vector<RowBatch> batches, int64_t rows);

  /// Attaches the broker the cache charges its pages through (the engine's
  /// query-memory broker). Entries cached before attachment are exempt.
  void AttachBroker(MemoryBroker* broker);

  /// MemoryRevocable: sheds LRU entries until `deficit` pages are
  /// released; the cache may shed to empty (no progress minimum — cached
  /// results are discretionary memory).
  int64_t ShedPages(int64_t deficit) override;
  void OnBrokerDestroyed() override;

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  int64_t total_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_pages_;
  }
  void Clear();

  /// Pages a result of `rows` rows occupies under the simulated page
  /// model (minimum 1 — an entry is never free).
  static int64_t PagesFor(int64_t rows) {
    const int64_t pages = (rows + kRowsPerPage - 1) / kRowsPerPage;
    return pages < 1 ? 1 : pages;
  }

 private:
  /// How (whether) an entry can be incrementally maintained.
  struct MaintenanceInfo {
    bool maintainable = false;
    std::string table;             ///< the single referenced table
    PredicatePtr predicate;        ///< bound (param-free); may be null
    std::vector<size_t> group_cols;  ///< table column index per group slot
    std::vector<AggSpec> aggs;
    std::vector<size_t> agg_cols;  ///< table column index per aggregate
  };

  struct Entry {
    std::shared_ptr<const std::vector<RowBatch>> batches;
    int64_t rows = 0;
    int64_t pages = 0;
    /// True when `pages` was granted from the attached broker (entries
    /// cached while no broker was attached are exempt from release).
    bool charged = false;
    uint64_t checksum = 0;
    Snapshot snapshot;
    MaintenanceInfo maint;
  };

  static uint64_t Checksum(const std::vector<RowBatch>& batches);
  static MaintenanceInfo AnalyzeMaintenance(
      const QuerySpec& spec, const Catalog& catalog,
      const std::vector<RowBatch>& batches);

  /// Drops `entry` (must be present), returning its pages to the broker.
  /// Caller holds mu_.
  void EraseLocked(const std::string& key);
  bool EvictOldestLocked();
  /// Grants `pages` from the broker, evicting LRU entries down to
  /// `min_keep` until it fits. Caller holds mu_. False when nothing more
  /// can be evicted and the grant still fails.
  bool ReserveLocked(int64_t pages, size_t min_keep);
  void ReleaseToBroker(int64_t pages);
  void ForEachEntryClearCharged();
  /// Registers with the broker while holding pages (lazy, like the
  /// spilling operators). Caller holds mu_.
  void UpdateRegistrationLocked();

  /// Applies the delta rows to a maintainable entry in place (copy-on-
  /// patch). Returns false — and erases the entry — when patching is not
  /// possible after all (table vanished, memory refused). Caller holds
  /// mu_.
  bool PatchLocked(const std::string& key, Entry* entry,
                   const Catalog& catalog, Hit* hit);

  Options options_;
  mutable std::mutex mu_;
  LruMap<std::string, Entry> entries_;
  KeyedFlight<std::string> flight_;
  int64_t total_pages_ = 0;
  int64_t charged_pages_ = 0;  ///< subset of total_pages_ held from broker_
  MemoryBroker* broker_ = nullptr;
  bool registered_ = false;
  Stats stats_;
};

}  // namespace rqp

#endif  // RQP_CACHE_RESULT_CACHE_H_
