#ifndef RQP_FAULT_FAULT_H_
#define RQP_FAULT_FAULT_H_

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rqp {

/// One scheduled run-time adversity. Activation is keyed to the
/// deterministic cost clock (cost units), never to wall time, so a schedule
/// replays bit-identically on every run with the same seed — the harness's
/// substitute for the unreproducible environment changes (stats refreshes,
/// memory pressure, slow devices) the seminar report blames for "automatic
/// disasters".
struct FaultEvent {
  enum class Kind {
    /// Broker capacity is set to `memory_pages` once the clock passes
    /// `at_cost` (one-shot; mid-query memory revocation).
    kMemoryDrop,
    /// Page reads on `table` cost `factor`x while the clock is inside
    /// [at_cost, until_cost) — a slow or contended device.
    kIoSlowdown,
    /// The believed row count of `table` is multiplied by `factor` before
    /// optimization (stale/perturbed statistics). Applied by the engine,
    /// not the executor; `at_cost`/`until_cost` are ignored.
    kStatsPerturb,
    /// Reads on `table` fail transiently with `fail_probability` per read
    /// attempt while the clock is inside [at_cost, until_cost); the reader
    /// retries with bounded exponential backoff (see FaultSchedule).
    kScanFailure,
    /// A result-cache entry read is corrupted with `fail_probability` per
    /// lookup (bit rot / torn write in the cache tier). The cache detects
    /// the corruption via checksum, drops the entry, and recomputes —
    /// never serves the damaged rows. `at_cost`/`until_cost`/`table` are
    /// ignored: cache lookups happen before the query's clock starts.
    kCacheCorruption,
  };
  Kind kind = Kind::kIoSlowdown;
  std::string table;  ///< target table; empty = every table
  double at_cost = 0;
  double until_cost = std::numeric_limits<double>::infinity();
  double factor = 1.0;         ///< kIoSlowdown / kStatsPerturb multiplier
  int64_t memory_pages = 0;    ///< kMemoryDrop: new broker capacity
  double fail_probability = 0; ///< kScanFailure: per-read-attempt chance
};

/// An explicit, seeded fault list. Every fault an execution experiences is
/// drawn from this schedule and nothing else, which is what makes chaos
/// runs regenerable experiments rather than flaky tests.
struct FaultSchedule {
  uint64_t seed = 42;
  std::vector<FaultEvent> events;
  /// Transient-read retry policy: a failed read is retried up to
  /// `max_read_retries` times; retry k (0-based) charges
  /// `retry_backoff_cost * 2^k` cost units on the simulated clock.
  int max_read_retries = 4;
  double retry_backoff_cost = 4.0;

  bool empty() const { return events.empty(); }

  // Builder helpers (chainable) for the common fault shapes.
  FaultSchedule& MemoryDrop(double at_cost, int64_t pages);
  FaultSchedule& IoSlowdown(
      std::string table, double factor, double at_cost = 0,
      double until_cost = std::numeric_limits<double>::infinity());
  FaultSchedule& PerturbStats(std::string table, double factor);
  FaultSchedule& ScanFailures(
      std::string table, double probability, double at_cost = 0,
      double until_cost = std::numeric_limits<double>::infinity());
  FaultSchedule& CacheCorruption(double probability);
};

/// What an execution actually experienced; surfaced into QueryResult.
struct FaultCounters {
  int memory_drops = 0;
  int64_t slowed_pages = 0;          ///< page reads that paid a slowdown
  int stats_perturbations = 0;       ///< tables with perturbed statistics
  int transient_read_failures = 0;   ///< individual failed read attempts
  int read_retries = 0;              ///< backoff retries performed
  int exhausted_reads = 0;           ///< reads whose retry budget ran out
  int cache_corruptions = 0;         ///< result-cache entries corrupted

  void Accumulate(const FaultCounters& o) {
    memory_drops += o.memory_drops;
    slowed_pages += o.slowed_pages;
    stats_perturbations += o.stats_perturbations;
    transient_read_failures += o.transient_read_failures;
    read_retries += o.read_retries;
    exhausted_reads += o.exhausted_reads;
    cache_corruptions += o.cache_corruptions;
  }
  bool any() const {
    return memory_drops > 0 || slowed_pages > 0 || stats_perturbations > 0 ||
           transient_read_failures > 0 || cache_corruptions > 0;
  }
};

/// Draws scheduled faults during one execution. All randomness comes from
/// the schedule's seed, and activation from the deterministic cost clock,
/// so two executions of the same plan over the same data observe identical
/// faults.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule);

  /// Pops the next pending memory drop whose threshold the clock passed.
  /// Returns false when none is due; otherwise writes the new capacity.
  bool NextMemoryDrop(double cost_units, int64_t* capacity_pages);

  /// Combined I/O cost multiplier for `pages` page reads on `table` at the
  /// given clock. Multiple overlapping slowdown windows compound.
  double IoMultiplier(const std::string& table, double cost_units,
                      int64_t pages);

  struct ReadOutcome {
    double backoff_cost = 0;  ///< clock charge for retries performed
    bool exhausted = false;   ///< retry budget used up; the read failed
  };
  /// Draws transient failures for one read attempt on `table`, retrying
  /// internally with exponential backoff per the schedule's policy.
  ReadOutcome OnReadAttempt(const std::string& table, double cost_units);

  /// Parallel-scan variant (PR 3): one read attempt per morsel, replayable
  /// at any degree of parallelism. The failure draws come from a fresh RNG
  /// derived from (schedule seed, morsel id) — not from the shared stream,
  /// whose consumption order would depend on worker scheduling — and the
  /// fault window is evaluated at `phase_start_cost` (the clock when the
  /// parallel phase began), which every worker observes identically.
  ReadOutcome OnMorselReadAttempt(const std::string& table,
                                  double phase_start_cost, int64_t morsel_id);

  /// Pre-optimization statistics perturbation: believed-row-count
  /// multipliers keyed by table (factors for the same table compound).
  std::map<std::string, double> StatsFactors();

  /// Draws whether the current result-cache lookup observes a corrupted
  /// entry (compound probability across kCacheCorruption events). Consumes
  /// shared-stream randomness only when a corruption event is scheduled,
  /// so cache-fault-free schedules replay unchanged.
  bool DrawCacheCorruption();

  const FaultCounters& counters() const { return counters_; }
  const FaultSchedule& schedule() const { return schedule_; }

 private:
  static bool InWindow(const FaultEvent& e, double cost_units) {
    return cost_units >= e.at_cost && cost_units < e.until_cost;
  }
  static bool Targets(const FaultEvent& e, const std::string& table) {
    return e.table.empty() || e.table == table;
  }

  /// Per-attempt failure probability for reads on `table` with the fault
  /// window evaluated at `cost_units` (independent causes compound).
  double ReadFailProbability(const std::string& table, double cost_units) const;
  ReadOutcome DrawReadFailures(double p_fail, Rng* rng);

  FaultSchedule schedule_;
  Rng rng_;
  std::vector<bool> memory_drop_fired_;  // parallel to schedule_.events
  FaultCounters counters_;
  /// Guards counters_, rng_, and memory_drop_fired_: parallel-phase workers
  /// hit IoMultiplier/OnMorselReadAttempt concurrently, and counter merges
  /// race with them. The schedule itself is immutable after construction.
  mutable std::mutex mu_;
};

}  // namespace rqp

#endif  // RQP_FAULT_FAULT_H_
