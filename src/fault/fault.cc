#include "fault/fault.h"

#include <utility>

namespace rqp {

FaultSchedule& FaultSchedule::MemoryDrop(double at_cost, int64_t pages) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kMemoryDrop;
  e.at_cost = at_cost;
  e.memory_pages = pages;
  events.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::IoSlowdown(std::string table, double factor,
                                         double at_cost, double until_cost) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kIoSlowdown;
  e.table = std::move(table);
  e.factor = factor;
  e.at_cost = at_cost;
  e.until_cost = until_cost;
  events.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::PerturbStats(std::string table, double factor) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kStatsPerturb;
  e.table = std::move(table);
  e.factor = factor;
  events.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::ScanFailures(std::string table,
                                           double probability, double at_cost,
                                           double until_cost) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kScanFailure;
  e.table = std::move(table);
  e.fail_probability = probability;
  e.at_cost = at_cost;
  e.until_cost = until_cost;
  events.push_back(std::move(e));
  return *this;
}

FaultSchedule& FaultSchedule::CacheCorruption(double probability) {
  FaultEvent e;
  e.kind = FaultEvent::Kind::kCacheCorruption;
  e.fail_probability = probability;
  events.push_back(std::move(e));
  return *this;
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)), rng_(schedule_.seed),
      memory_drop_fired_(schedule_.events.size(), false) {}

bool FaultInjector::NextMemoryDrop(double cost_units,
                                   int64_t* capacity_pages) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < schedule_.events.size(); ++i) {
    const FaultEvent& e = schedule_.events[i];
    if (e.kind != FaultEvent::Kind::kMemoryDrop || memory_drop_fired_[i] ||
        cost_units < e.at_cost) {
      continue;
    }
    memory_drop_fired_[i] = true;
    ++counters_.memory_drops;
    *capacity_pages = e.memory_pages;
    return true;
  }
  return false;
}

double FaultInjector::IoMultiplier(const std::string& table,
                                   double cost_units, int64_t pages) {
  double mult = 1.0;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultEvent::Kind::kIoSlowdown && Targets(e, table) &&
        InWindow(e, cost_units)) {
      mult *= e.factor;
    }
  }
  if (mult != 1.0) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.slowed_pages += pages;
  }
  return mult;
}

double FaultInjector::ReadFailProbability(const std::string& table,
                                          double cost_units) const {
  // Combined per-attempt failure probability across matching events
  // (independent causes: P = 1 - Π(1 - p_i)).
  double survive = 1.0;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultEvent::Kind::kScanFailure && Targets(e, table) &&
        InWindow(e, cost_units)) {
      survive *= 1.0 - e.fail_probability;
    }
  }
  return 1.0 - survive;
}

FaultInjector::ReadOutcome FaultInjector::DrawReadFailures(double p_fail,
                                                           Rng* rng) {
  ReadOutcome out;
  double backoff = schedule_.retry_backoff_cost;
  for (int attempt = 0;; ++attempt) {
    if (!rng->Bernoulli(p_fail)) return out;  // read succeeded
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.transient_read_failures;
      if (attempt >= schedule_.max_read_retries) {
        ++counters_.exhausted_reads;
        out.exhausted = true;
        return out;
      }
      ++counters_.read_retries;
    }
    out.backoff_cost += backoff;
    backoff *= 2;
  }
}

FaultInjector::ReadOutcome FaultInjector::OnReadAttempt(
    const std::string& table, double cost_units) {
  const double p_fail = ReadFailProbability(table, cost_units);
  if (p_fail <= 0.0) return ReadOutcome{};
  // The shared RNG stream is only touched from the serial execution path;
  // parallel scans use OnMorselReadAttempt's derived streams instead.
  return DrawReadFailures(p_fail, &rng_);
}

namespace {
// SplitMix64 finalizer: decorrelates consecutive morsel ids into
// independent-looking RNG seeds.
uint64_t MixSeed(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

FaultInjector::ReadOutcome FaultInjector::OnMorselReadAttempt(
    const std::string& table, double phase_start_cost, int64_t morsel_id) {
  const double p_fail = ReadFailProbability(table, phase_start_cost);
  if (p_fail <= 0.0) return ReadOutcome{};
  Rng morsel_rng(schedule_.seed ^ MixSeed(static_cast<uint64_t>(morsel_id)));
  return DrawReadFailures(p_fail, &morsel_rng);
}

bool FaultInjector::DrawCacheCorruption() {
  // Compound probability across scheduled corruption events (independent
  // causes, same shape as ReadFailProbability).
  double survive = 1.0;
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind == FaultEvent::Kind::kCacheCorruption) {
      survive *= 1.0 - e.fail_probability;
    }
  }
  const double p = 1.0 - survive;
  if (p <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (!rng_.Bernoulli(p)) return false;
  ++counters_.cache_corruptions;
  return true;
}

std::map<std::string, double> FaultInjector::StatsFactors() {
  std::map<std::string, double> factors;
  std::lock_guard<std::mutex> lock(mu_);
  for (const FaultEvent& e : schedule_.events) {
    if (e.kind != FaultEvent::Kind::kStatsPerturb) continue;
    auto [it, inserted] = factors.emplace(e.table, e.factor);
    if (!inserted) it->second *= e.factor;
    ++counters_.stats_perturbations;
  }
  return factors;
}

}  // namespace rqp
