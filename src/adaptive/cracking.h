#ifndef RQP_ADAPTIVE_CRACKING_H_
#define RQP_ADAPTIVE_CRACKING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "exec/context.h"

namespace rqp {

/// Database cracking (Idreos, Kersten & Manegold, CIDR'07 — seminar §4.3
/// "adaptive index tuning"): a copy of the column is physically reorganized
/// as a side effect of range queries. Each query partitions only the pieces
/// its bounds fall into, so the first query costs about a scan and later
/// queries approach index performance on the ranges the workload touches.
class CrackerColumn {
 public:
  /// Copies the column; row ids are positions in `values`.
  explicit CrackerColumn(const std::vector<int64_t>& values);

  /// Answers SELECT ... WHERE value BETWEEN lo AND hi, cracking along the
  /// way. Returns the number of qualifying rows; appends their row ids to
  /// `row_ids` when non-null. Work is charged to `ctx`.
  int64_t SelectRange(int64_t lo, int64_t hi, ExecContext* ctx,
                      std::vector<int64_t>* row_ids = nullptr);

  /// Number of pieces the column is currently cracked into.
  size_t num_pieces() const { return boundaries_.size() + 1; }

  int64_t size() const { return static_cast<int64_t>(values_.size()); }

  /// Verifies the cracking invariant (all values in piece i < crack value
  /// of boundary i); exposed for property tests.
  bool CheckInvariant() const;

 private:
  /// Ensures a crack at `v`: after return, positions [0, idx) hold values
  /// < v and [idx, n) hold values >= v. Returns idx.
  size_t CrackAt(int64_t v, ExecContext* ctx);

  std::vector<int64_t> values_;
  std::vector<int64_t> row_ids_;
  /// crack value -> first position with value >= crack value.
  std::map<int64_t, size_t> boundaries_;
};

/// Adaptive merging (Graefe & Kuno, EDBT'10): the column starts as sorted
/// runs; each range query extracts the qualifying keys from every run and
/// merges them into the final sorted partition, so regions converge to a
/// full index after a few touching queries.
class AdaptiveMergeColumn {
 public:
  AdaptiveMergeColumn(const std::vector<int64_t>& values, int num_runs,
                      ExecContext* ctx);

  /// Range select; merges the qualifying key range out of the runs into
  /// the final partition on first touch.
  int64_t SelectRange(int64_t lo, int64_t hi, ExecContext* ctx,
                      std::vector<int64_t>* row_ids = nullptr);

  int64_t merged_size() const { return static_cast<int64_t>(merged_.size()); }
  int num_runs_remaining() const;

 private:
  struct Entry {
    int64_t value;
    int64_t row;
    bool operator<(const Entry& o) const { return value < o.value; }
  };
  std::vector<std::vector<Entry>> runs_;
  std::vector<Entry> merged_;  // fully sorted
  /// Disjoint key ranges already merged (value space, inclusive).
  std::map<int64_t, int64_t> merged_ranges_;

  bool IsCovered(int64_t lo, int64_t hi) const;
  void AddMergedRange(int64_t lo, int64_t hi);
};

}  // namespace rqp

#endif  // RQP_ADAPTIVE_CRACKING_H_
