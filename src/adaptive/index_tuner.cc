#include "adaptive/index_tuner.h"

namespace rqp {

bool IndexTuner::ObserveMissedIndex(const std::string& table,
                                    const std::string& column,
                                    double missed_benefit,
                                    double build_cost) {
  if (missed_benefit <= 0) return false;
  double& acc = accrued_[{table, column}];
  acc += missed_benefit;
  return acc >= build_cost * options_.threshold_factor;
}

}  // namespace rqp
