#ifndef RQP_ADAPTIVE_INDEX_TUNER_H_
#define RQP_ADAPTIVE_INDEX_TUNER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rqp {

/// QUIET-style autonomous "soft" index tuning (Sattler/Geist/Schallehn,
/// VLDB'03; seminar §4.3 "index tuning by ... query execution"): every
/// executed scan that *could* have used an absent index accrues the benefit
/// it missed; once a column's accrued benefit exceeds the index build cost,
/// the tuner recommends building it. Index creation thus emerges from the
/// workload instead of a DBA's forecast.
class IndexTuner {
 public:
  struct Options {
    /// Accrued benefit must exceed build_cost * this factor.
    double threshold_factor = 1.0;
  };

  IndexTuner() : IndexTuner(Options()) {}
  explicit IndexTuner(Options options) : options_(options) {}

  /// Reports a scan that evaluated a sargable predicate on
  /// `table`.`column` without an index. `missed_benefit` is the cost the
  /// scan paid beyond what an index scan would have (0 if the scan was the
  /// right plan anyway). Returns true if the accrued benefit now justifies
  /// building the index (the caller builds it and should then call
  /// `MarkBuilt`).
  bool ObserveMissedIndex(const std::string& table, const std::string& column,
                          double missed_benefit, double build_cost);

  void MarkBuilt(const std::string& table, const std::string& column) {
    accrued_.erase({table, column});
  }

  double AccruedBenefit(const std::string& table,
                        const std::string& column) const {
    auto it = accrued_.find({table, column});
    return it == accrued_.end() ? 0.0 : it->second;
  }

 private:
  Options options_;
  std::map<std::pair<std::string, std::string>, double> accrued_;
};

}  // namespace rqp

#endif  // RQP_ADAPTIVE_INDEX_TUNER_H_
