#include "adaptive/advisor.h"

#include <algorithm>
#include <set>

namespace rqp {

StatusOr<double> EstimateWorkloadCost(const Catalog* catalog,
                                      const StatsCatalog* stats,
                                      const std::vector<QuerySpec>& workload,
                                      const OptimizerOptions& opt_options) {
  CardinalityModel model(stats);
  Optimizer optimizer(catalog, &model, opt_options);
  double total = 0;
  for (const auto& spec : workload) {
    auto plan = optimizer.Optimize(spec);
    if (!plan.ok()) return plan.status();
    total += plan->plan->est_cost;
  }
  return total;
}

StatusOr<std::vector<IndexChoice>> AdviseIndexes(
    Catalog* catalog, const StatsCatalog* stats,
    const std::vector<QuerySpec>& training,
    const std::vector<QuerySpec>& variations, const AdvisorOptions& options,
    const OptimizerOptions& opt_options) {
  // Candidate generation: columns referenced by predicates or join keys.
  std::set<IndexChoice> candidates;
  auto add_candidates = [&](const QuerySpec& spec) {
    for (const auto& ref : spec.tables) {
      if (ref.predicate == nullptr) continue;
      for (const auto& col : ReferencedColumns(ref.predicate)) {
        candidates.insert({ref.table, col});
      }
    }
    for (const auto& j : spec.joins) {
      candidates.insert({j.left_table, j.left_column});
      candidates.insert({j.right_table, j.right_column});
    }
  };
  for (const auto& q : training) add_candidates(q);

  // Existing indexes are neither candidates nor recommendations.
  for (auto it = candidates.begin(); it != candidates.end();) {
    if (catalog->FindIndex(it->first, it->second) != nullptr) {
      it = candidates.erase(it);
    } else {
      ++it;
    }
  }

  // Scoring workload.
  std::vector<QuerySpec> scoring = training;
  if (options.robust) {
    scoring.insert(scoring.end(), variations.begin(), variations.end());
  }

  std::vector<IndexChoice> chosen;
  auto base_cost = EstimateWorkloadCost(catalog, stats, scoring, opt_options);
  if (!base_cost.ok()) return base_cost.status();
  double current_cost = *base_cost;

  for (int round = 0; round < options.max_indexes && !candidates.empty();
       ++round) {
    IndexChoice best_choice;
    double best_cost = current_cost;
    for (const auto& cand : candidates) {
      // What-if: build for real, price the workload, drop.
      auto built = catalog->BuildIndex(cand.first, cand.second);
      if (!built.ok()) return built.status();
      auto cost = EstimateWorkloadCost(catalog, stats, scoring, opt_options);
      Status dropped = catalog->DropIndex(cand.first, cand.second);
      if (!cost.ok()) return cost.status();
      if (!dropped.ok()) return dropped;
      if (*cost < best_cost) {
        best_cost = *cost;
        best_choice = cand;
      }
    }
    if (best_choice.first.empty()) break;  // no candidate helps
    auto built = catalog->BuildIndex(best_choice.first, best_choice.second);
    if (!built.ok()) return built.status();
    candidates.erase(best_choice);
    chosen.push_back(best_choice);
    current_cost = best_cost;
  }
  return chosen;
}

}  // namespace rqp
