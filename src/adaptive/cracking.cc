#include "adaptive/cracking.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "storage/table.h"

namespace rqp {

CrackerColumn::CrackerColumn(const std::vector<int64_t>& values)
    : values_(values) {
  row_ids_.resize(values_.size());
  for (size_t i = 0; i < row_ids_.size(); ++i) {
    row_ids_[i] = static_cast<int64_t>(i);
  }
}

size_t CrackerColumn::CrackAt(int64_t v, ExecContext* ctx) {
  auto it = boundaries_.find(v);
  if (it != boundaries_.end()) return it->second;

  // Piece containing the crack position: between the previous and the next
  // existing boundary.
  size_t piece_begin = 0;
  size_t piece_end = values_.size();
  auto next = boundaries_.lower_bound(v);
  if (next != boundaries_.end()) piece_end = next->second;
  if (next != boundaries_.begin()) {
    auto prev = std::prev(next);
    piece_begin = prev->second;
  }

  // Partition the piece in place: values < v first. Only this piece is
  // touched — the essence of cracking's pay-as-you-go cost.
  size_t i = piece_begin, j = piece_end;
  while (i < j) {
    if (values_[i] < v) {
      ++i;
    } else {
      --j;
      std::swap(values_[i], values_[j]);
      std::swap(row_ids_[i], row_ids_[j]);
    }
  }
  const size_t touched = piece_end - piece_begin;
  if (ctx != nullptr) {
    ctx->ChargeRowCpu(static_cast<int64_t>(touched));
    ctx->ChargeSeqPages(
        (static_cast<int64_t>(touched) + kRowsPerPage - 1) / kRowsPerPage);
  }
  boundaries_[v] = i;
  return i;
}

int64_t CrackerColumn::SelectRange(int64_t lo, int64_t hi, ExecContext* ctx,
                                   std::vector<int64_t>* row_ids) {
  if (lo > hi) return 0;
  const size_t begin = CrackAt(lo, ctx);
  // hi inclusive: crack at hi + 1 (values >= hi+1 move right).
  const size_t end =
      hi == std::numeric_limits<int64_t>::max() ? values_.size()
                                                : CrackAt(hi + 1, ctx);
  assert(begin <= end);
  if (ctx != nullptr) {
    ctx->ChargeRowCpu(static_cast<int64_t>(end - begin));
  }
  if (row_ids != nullptr) {
    row_ids->insert(row_ids->end(), row_ids_.begin() + static_cast<long>(begin),
                    row_ids_.begin() + static_cast<long>(end));
  }
  return static_cast<int64_t>(end - begin);
}

bool CrackerColumn::CheckInvariant() const {
  size_t prev_pos = 0;
  int64_t prev_value = std::numeric_limits<int64_t>::min();
  for (const auto& [v, pos] : boundaries_) {
    if (pos < prev_pos) return false;
    // All values in [prev_pos, pos) must be in [prev_value, v).
    for (size_t i = prev_pos; i < pos; ++i) {
      if (values_[i] < prev_value || values_[i] >= v) return false;
    }
    prev_pos = pos;
    prev_value = v;
  }
  for (size_t i = prev_pos; i < values_.size(); ++i) {
    if (values_[i] < prev_value) return false;
  }
  return true;
}

AdaptiveMergeColumn::AdaptiveMergeColumn(const std::vector<int64_t>& values,
                                         int num_runs, ExecContext* ctx) {
  assert(num_runs > 0);
  const size_t n = values.size();
  const size_t run_size = (n + static_cast<size_t>(num_runs) - 1) /
                          static_cast<size_t>(num_runs);
  for (size_t start = 0; start < n; start += run_size) {
    const size_t end = std::min(n, start + run_size);
    std::vector<Entry> run;
    run.reserve(end - start);
    for (size_t i = start; i < end; ++i) {
      run.push_back({values[i], static_cast<int64_t>(i)});
    }
    std::sort(run.begin(), run.end());
    if (ctx != nullptr) {
      // Run generation: one pass plus in-memory sort.
      const auto run_n = static_cast<int64_t>(run.size());
      ctx->ChargeSeqPages((run_n + kRowsPerPage - 1) / kRowsPerPage);
      ctx->ChargeCompareOps(static_cast<int64_t>(
          static_cast<double>(run_n) *
          std::log2(static_cast<double>(run_n) + 1.0)));
    }
    runs_.push_back(std::move(run));
  }
}

bool AdaptiveMergeColumn::IsCovered(int64_t lo, int64_t hi) const {
  // Find a merged range [a, b] with a <= lo and b >= hi.
  auto it = merged_ranges_.upper_bound(lo);
  if (it == merged_ranges_.begin()) return false;
  --it;
  return it->first <= lo && it->second >= hi;
}

void AdaptiveMergeColumn::AddMergedRange(int64_t lo, int64_t hi) {
  // Coalesce with overlapping/adjacent ranges.
  auto it = merged_ranges_.upper_bound(lo);
  if (it != merged_ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo - 1) {
      lo = prev->first;
      hi = std::max(hi, prev->second);
      it = merged_ranges_.erase(prev);
    }
  }
  while (it != merged_ranges_.end() && it->first <= hi + 1) {
    hi = std::max(hi, it->second);
    it = merged_ranges_.erase(it);
  }
  merged_ranges_[lo] = hi;
}

int64_t AdaptiveMergeColumn::SelectRange(int64_t lo, int64_t hi,
                                         ExecContext* ctx,
                                         std::vector<int64_t>* row_ids) {
  if (lo > hi) return 0;
  if (!IsCovered(lo, hi)) {
    // Extract the key range from every run and merge it into the final
    // partition. Only qualifying keys move — adaptive merging's
    // pay-as-you-go step.
    std::vector<Entry> extracted;
    for (auto& run : runs_) {
      auto begin = std::lower_bound(run.begin(), run.end(),
                                    Entry{lo, 0});
      auto end = std::upper_bound(
          begin, run.end(), Entry{hi, std::numeric_limits<int64_t>::max()});
      if (ctx != nullptr) ctx->ChargeIndexDescend();
      if (begin == end) continue;
      extracted.insert(extracted.end(), begin, end);
      run.erase(begin, end);
    }
    std::sort(extracted.begin(), extracted.end());
    const size_t old_size = merged_.size();
    merged_.insert(merged_.end(), extracted.begin(), extracted.end());
    std::inplace_merge(merged_.begin(),
                       merged_.begin() + static_cast<long>(old_size),
                       merged_.end());
    if (ctx != nullptr) {
      const auto moved = static_cast<int64_t>(extracted.size());
      ctx->ChargeRowCpu(2 * moved);  // move + merge
      ctx->ChargeCompareOps(moved);
    }
    AddMergedRange(lo, hi);
  }
  // Answer from the final partition.
  auto begin = std::lower_bound(merged_.begin(), merged_.end(), Entry{lo, 0});
  auto end = std::upper_bound(
      begin, merged_.end(), Entry{hi, std::numeric_limits<int64_t>::max()});
  if (ctx != nullptr) {
    ctx->ChargeIndexDescend();
    ctx->ChargeRowCpu(static_cast<int64_t>(end - begin));
  }
  if (row_ids != nullptr) {
    for (auto it = begin; it != end; ++it) row_ids->push_back(it->row);
  }
  return static_cast<int64_t>(end - begin);
}

int AdaptiveMergeColumn::num_runs_remaining() const {
  int n = 0;
  for (const auto& run : runs_) {
    if (!run.empty()) ++n;
  }
  return n;
}

}  // namespace rqp
