#ifndef RQP_ADAPTIVE_ADVISOR_H_
#define RQP_ADAPTIVE_ADVISOR_H_

#include <string>
#include <utility>
#include <vector>

#include "optimizer/optimizer.h"
#include "stats/table_stats.h"
#include "storage/table.h"

namespace rqp {

/// An index recommendation: (table, column).
using IndexChoice = std::pair<std::string, std::string>;

struct AdvisorOptions {
  int max_indexes = 3;
  /// Plain advisors optimize the training workload only. The robust
  /// advisor (Gebaly & Aboulnaga's generality idea, seminar §5.4) scores
  /// candidates on the training workload *plus* the provided variations,
  /// preferring indexes that stay useful when the workload drifts.
  bool robust = false;
};

/// Greedy what-if index advisor: candidates are every (table, column) used
/// in a sargable predicate or join key of the workload; each round builds
/// the candidate index for real, re-optimizes the scoring workload, and
/// keeps the index with the largest estimated-cost reduction.
///
/// On return the recommended indexes EXIST in `catalog` (the caller may
/// drop them). Existing indexes are left untouched and not recommended.
StatusOr<std::vector<IndexChoice>> AdviseIndexes(
    Catalog* catalog, const StatsCatalog* stats,
    const std::vector<QuerySpec>& training,
    const std::vector<QuerySpec>& variations, const AdvisorOptions& options,
    const OptimizerOptions& opt_options);

/// Total optimizer-estimated cost of a workload under the current physical
/// design.
StatusOr<double> EstimateWorkloadCost(const Catalog* catalog,
                                      const StatsCatalog* stats,
                                      const std::vector<QuerySpec>& workload,
                                      const OptimizerOptions& opt_options);

}  // namespace rqp

#endif  // RQP_ADAPTIVE_ADVISOR_H_
