#ifndef RQP_WORKLOAD_WORKLOADS_H_
#define RQP_WORKLOAD_WORKLOADS_H_

#include <string>
#include <vector>

#include "optimizer/optimizer.h"
#include "util/rng.h"

namespace rqp {
namespace workload {

/// Builds the star query SELECT ... FROM fact ⋈ dim_i ... with per-dimension
/// attribute ranges `attr_hi[i]` (dimension i filtered to attr in
/// [0, attr_hi[i]]; negative = dimension not referenced).
QuerySpec StarQuery(int num_dimensions, const std::vector<int64_t>& attr_hi);

/// A random star query over `num_dimensions` dimensions of `dim_rows` rows:
/// each dimension participates with probability `dim_probability` and gets
/// a random selectivity in [min_sel, max_sel].
QuerySpec RandomStarQuery(Rng* rng, int num_dimensions, int64_t dim_rows,
                          double dim_probability, double min_sel,
                          double max_sel);

/// The Black-Hat trap (Lohman's war story): a star query whose fact-side
/// filter conjoins a range on fk0 with the *redundant* equivalent range on
/// the functionally-dependent column `corr` (corr = fk0*1000+7). The true
/// selectivity equals the fk0 range's; independence squares it.
QuerySpec TrapStarQuery(int num_dimensions, int64_t fk0_hi,
                        const std::vector<int64_t>& attr_hi);

/// POP experiment workload (Figures 1–3): `num_queries` random star
/// queries, of which `trap_fraction` carry the redundant-predicate trap
/// that wrecks the optimizer's fact-side estimate.
std::vector<QuerySpec> PopWorkload(Rng* rng, int num_queries,
                                   double trap_fraction, int num_dimensions,
                                   int64_t dim_rows);

/// One family of semantically equivalent single-table predicates (§5.1
/// "Benchmarking Robustness"). All formulations in a family select exactly
/// the same rows.
struct EquivalenceFamily {
  std::string description;
  std::vector<PredicatePtr> formulations;
};

/// The equivalence test sets over a table with integer columns `a` (domain
/// [0, a_max]) and `b`: negation, IN-vs-OR, range phrasing, conjunct order,
/// tautological padding.
std::vector<EquivalenceFamily> EquivalenceSuite(int64_t a_max);

/// Parameterized range-query family (Sattler et al. §5.2): COUNT(*) over
/// `table` with `column` BETWEEN 0 AND p, for each selectivity in `sels`
/// (domain [0, domain_max]). Returns parallel specs.
std::vector<QuerySpec> SelectivitySweep(const std::string& table,
                                        const std::string& column,
                                        int64_t domain_max,
                                        const std::vector<double>& sels);

/// Workload drift for the design-advisor experiment: shifts/rescales every
/// Between range in the spec while keeping the query pattern.
QuerySpec PerturbQuery(Rng* rng, const QuerySpec& spec, int64_t domain_max);

}  // namespace workload
}  // namespace rqp

#endif  // RQP_WORKLOAD_WORKLOADS_H_
