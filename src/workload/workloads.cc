#include "workload/workloads.h"

#include <algorithm>
#include <cassert>

namespace rqp {
namespace workload {

QuerySpec StarQuery(int num_dimensions,
                    const std::vector<int64_t>& attr_hi) {
  QuerySpec spec;
  spec.tables.push_back({"fact", nullptr});
  for (int d = 0; d < num_dimensions; ++d) {
    if (static_cast<size_t>(d) < attr_hi.size() && attr_hi[d] < 0) continue;
    const std::string dim = "dim" + std::to_string(d);
    PredicatePtr pred = nullptr;
    if (static_cast<size_t>(d) < attr_hi.size()) {
      pred = MakeBetween("attr", 0, attr_hi[static_cast<size_t>(d)]);
    }
    spec.tables.push_back({dim, pred});
    spec.joins.push_back({"fact", "fk" + std::to_string(d), dim, "id"});
  }
  return spec;
}

QuerySpec RandomStarQuery(Rng* rng, int num_dimensions, int64_t dim_rows,
                          double dim_probability, double min_sel,
                          double max_sel) {
  std::vector<int64_t> attr_hi;
  bool any = false;
  for (int d = 0; d < num_dimensions; ++d) {
    if (rng->Bernoulli(dim_probability)) {
      const double sel = min_sel + rng->NextDouble() * (max_sel - min_sel);
      // dim attr = id * 10, ids in [0, dim_rows).
      attr_hi.push_back(
          static_cast<int64_t>(sel * static_cast<double>(dim_rows)) * 10);
      any = true;
    } else {
      attr_hi.push_back(-1);
    }
  }
  if (!any && num_dimensions > 0) {
    attr_hi[0] = dim_rows * 10 / 4;  // ensure at least one join
  }
  return StarQuery(num_dimensions, attr_hi);
}

QuerySpec TrapStarQuery(int num_dimensions, int64_t fk0_hi,
                        const std::vector<int64_t>& attr_hi) {
  QuerySpec spec = StarQuery(num_dimensions, attr_hi);
  // Redundant conjuncts: corr = fk0*1000+7 and corr2 = fk0*7+13, so each
  // extra range holds exactly when fk0 <= fk0_hi. True selectivity is the
  // fk0 range's s; independence estimates s^3 — the multiplicative
  // underestimation of the war story.
  spec.tables[0].predicate =
      MakeAnd({MakeBetween("fk0", 0, fk0_hi),
               MakeBetween("corr", 0, fk0_hi * 1000 + 7),
               MakeBetween("corr2", 0, fk0_hi * 7 + 13)});
  return spec;
}

std::vector<QuerySpec> PopWorkload(Rng* rng, int num_queries,
                                   double trap_fraction, int num_dimensions,
                                   int64_t dim_rows) {
  std::vector<QuerySpec> queries;
  queries.reserve(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    if (rng->Bernoulli(trap_fraction)) {
      // Trap query: a moderate fk0 range whose estimate the two redundant
      // conjuncts drive down by 1/s^2 — small enough to trick the
      // optimizer into index-nested-loops plans over a large actual outer.
      const int64_t fk0_hi =
          rng->Uniform(dim_rows / 20, dim_rows / 10);
      std::vector<int64_t> attr_hi;
      for (int d = 0; d < num_dimensions; ++d) {
        attr_hi.push_back(d == 0 ? dim_rows * 10
                                 : rng->Uniform(2, dim_rows) * 10);
      }
      queries.push_back(TrapStarQuery(num_dimensions, fk0_hi, attr_hi));
    } else {
      queries.push_back(RandomStarQuery(rng, num_dimensions, dim_rows, 0.7,
                                        0.02, 0.6));
    }
  }
  return queries;
}

std::vector<EquivalenceFamily> EquivalenceSuite(int64_t a_max) {
  std::vector<EquivalenceFamily> suite;
  const int64_t c = a_max / 2;
  // Narrow range so the access-path choice (index vs scan) is at stake.
  const int64_t lo = a_max / 4, hi = a_max / 4 + std::max<int64_t>(1, a_max / 64);

  suite.push_back(
      {"negated inequality vs equality",
       {MakeNot(MakeCmp("a", CmpOp::kNe, c)), MakeCmp("a", CmpOp::kEq, c)}});

  suite.push_back(
      {"IN list vs OR of equalities vs reordered IN",
       {MakeIn("a", {lo, c, hi + 1}),
        MakeOr({MakeCmp("a", CmpOp::kEq, c), MakeCmp("a", CmpOp::kEq, lo),
                MakeCmp("a", CmpOp::kEq, hi + 1)}),
        MakeIn("a", {hi + 1, lo, c})}});

  suite.push_back(
      {"range phrasings",
       {MakeBetween("a", lo, hi),
        MakeAnd({MakeCmp("a", CmpOp::kGe, lo), MakeCmp("a", CmpOp::kLe, hi)}),
        MakeAnd({MakeCmp("a", CmpOp::kLe, hi), MakeCmp("a", CmpOp::kGe, lo)}),
        MakeNot(MakeOr({MakeCmp("a", CmpOp::kLt, lo),
                        MakeCmp("a", CmpOp::kGt, hi)})),
        MakeAnd({MakeCmp("a", CmpOp::kGt, lo - 1),
                 MakeCmp("a", CmpOp::kLt, hi + 1)})}});

  suite.push_back(
      {"conjunct order across columns",
       {MakeAnd({MakeBetween("a", lo, hi), MakeBetween("b", 0, 100)}),
        MakeAnd({MakeBetween("b", 0, 100), MakeBetween("a", lo, hi)})}});

  suite.push_back(
      {"tautological padding",
       {MakeBetween("a", lo, hi),
        MakeAnd({MakeBetween("a", lo, hi), MakeCmp("a", CmpOp::kGe, lo)}),
        MakeAnd({MakeBetween("a", lo, hi),
                 MakeBetween("a", lo - 1, hi + 1)})}});

  return suite;
}

std::vector<QuerySpec> SelectivitySweep(const std::string& table,
                                        const std::string& column,
                                        int64_t domain_max,
                                        const std::vector<double>& sels) {
  std::vector<QuerySpec> specs;
  specs.reserve(sels.size());
  for (double s : sels) {
    const int64_t hi = std::max<int64_t>(
        0, static_cast<int64_t>(s * static_cast<double>(domain_max + 1)) - 1);
    QuerySpec spec;
    spec.tables.push_back({table, MakeBetween(column, 0, hi)});
    spec.aggregates = {{AggFn::kCount, "", "cnt"}};
    specs.push_back(std::move(spec));
  }
  return specs;
}

namespace {
PredicatePtr PerturbPredicate(Rng* rng, const PredicatePtr& p,
                              int64_t domain_max) {
  return std::visit(
      [&](const auto& n) -> PredicatePtr {
        using T = std::decay_t<decltype(n)>;
        if constexpr (std::is_same_v<T, Between>) {
          const int64_t width = n.hi - n.lo;
          const int64_t shift = rng->Uniform(-domain_max / 10, domain_max / 10);
          const int64_t new_lo =
              std::clamp<int64_t>(n.lo + shift, 0, domain_max);
          const int64_t new_hi =
              std::clamp<int64_t>(new_lo + width, new_lo, domain_max);
          return MakeBetween(n.column, new_lo, new_hi);
        } else if constexpr (std::is_same_v<T, Conjunction>) {
          std::vector<PredicatePtr> kids;
          for (const auto& c : n.children) {
            kids.push_back(PerturbPredicate(rng, c, domain_max));
          }
          return MakeAnd(std::move(kids));
        } else {
          return p;
        }
      },
      p->node);
}
}  // namespace

QuerySpec PerturbQuery(Rng* rng, const QuerySpec& spec, int64_t domain_max) {
  QuerySpec out = spec;
  for (auto& ref : out.tables) {
    if (ref.predicate != nullptr) {
      ref.predicate = PerturbPredicate(rng, ref.predicate, domain_max);
    }
  }
  return out;
}

}  // namespace workload
}  // namespace rqp
